"""Pipeline: a validated DAG of declared passes.

Construction validates the declaration — duplicate pass names, unknown
dependencies and dependency cycles all raise
:class:`~repro.core.registry.RegistryError` — and compiles the DAG into
*levels* (antichains of the dependency order): level 0 holds the passes
with no dependencies, level ``k`` the passes whose deepest dependency
sits at level ``k - 1``.  Flattening the levels in declaration order
yields the canonical topological order the serial schedule executes;
the concurrent schedule may overlap passes *within* a level (they are
mutually independent by construction) but never across levels.

A :class:`RetryRule` declares a pipeline-level Las Vegas retry: when a
matching exception escapes a pass, execution restarts from the level
containing ``from_pass`` (built-in pipelines place the retried pass at
the start of its level), up to ``max_attempts`` total attempts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..errors import RegistryError
from .passes import Pass


@dataclass(frozen=True)
class RetryRule:
    """Las Vegas retry declaration for a pipeline.

    ``exceptions`` are the exception types that trigger a retry;
    ``from_pass`` names the pass execution restarts from (its whole
    level re-runs); ``max_attempts`` caps total attempts — the final
    attempt re-raises; ``on_retry(ctx)``, when set, runs before each
    restart (built-in pipelines use it to bump retry counters).
    """

    exceptions: Tuple[Type[BaseException], ...]
    from_pass: str
    max_attempts: int = 5
    on_retry: Optional[Callable[[Any], None]] = None


class Pipeline:
    """An ordered, validated collection of :class:`Pass` declarations."""

    def __init__(
        self,
        name: str,
        passes: Sequence[Pass],
        description: str = "",
        result_key: str = "result",
        retry: Optional[RetryRule] = None,
    ) -> None:
        self.name = name
        self.passes: Tuple[Pass, ...] = tuple(passes)
        self.description = description
        self.result_key = result_key
        self.retry = retry
        self._by_name: Dict[str, Pass] = {}
        for p in self.passes:
            if p.name in self._by_name:
                raise RegistryError(
                    f"pipeline {name!r}: duplicate pass {p.name!r}"
                )
            self._by_name[p.name] = p
        for p in self.passes:
            for dep in p.deps:
                if dep not in self._by_name:
                    raise RegistryError(
                        f"pipeline {name!r}: pass {p.name!r} depends on "
                        f"unknown pass {dep!r}"
                    )
        self._levels: Tuple[Tuple[Pass, ...], ...] = self._compile_levels()
        if retry is not None and retry.from_pass not in self._by_name:
            raise RegistryError(
                f"pipeline {name!r}: retry rule names unknown pass "
                f"{retry.from_pass!r}"
            )

    # -- structure -------------------------------------------------------

    def _compile_levels(self) -> Tuple[Tuple[Pass, ...], ...]:
        """Kahn's algorithm over declaration order; raises
        :class:`RegistryError` on a dependency cycle."""
        indegree = {p.name: len(set(p.deps)) for p in self.passes}
        dependents: Dict[str, List[str]] = {p.name: [] for p in self.passes}
        for p in self.passes:
            # dict.fromkeys = order-preserving dedup; iterating
            # set(p.deps) would walk hash-randomized string order.
            for dep in dict.fromkeys(p.deps):
                dependents[dep].append(p.name)
        placed: Dict[str, int] = {}
        frontier = [p.name for p in self.passes if indegree[p.name] == 0]
        level = 0
        while frontier:
            ready = set(frontier)
            for name in frontier:
                placed[name] = level
            nxt = []
            for name in frontier:
                for dependent in dependents[name]:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0 and dependent not in ready:
                        nxt.append(dependent)
            # Keep declaration order within the next level.
            nxt_set = set(nxt)
            frontier = [p.name for p in self.passes if p.name in nxt_set]
            level += 1
        if len(placed) < len(self.passes):
            stuck = [p.name for p in self.passes if p.name not in placed]
            raise RegistryError(
                f"pipeline {self.name!r}: dependency cycle among passes "
                f"{stuck!r}"
            )
        levels: List[List[Pass]] = [[] for _ in range(level)]
        for p in self.passes:
            levels[placed[p.name]].append(p)
        return tuple(tuple(lvl) for lvl in levels)

    @property
    def levels(self) -> Tuple[Tuple[Pass, ...], ...]:
        return self._levels

    def topological_order(self) -> List[Pass]:
        """Levels flattened in declaration order — the canonical serial
        execution order and the reference for bit-identity."""
        return [p for lvl in self._levels for p in lvl]

    def pass_names(self) -> List[str]:
        return [p.name for p in self.topological_order()]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Pass:
        return self._by_name[name]

    def retry_level(self) -> int:
        """Index of the level execution restarts from on retry."""
        if self.retry is None:
            return 0
        for i, lvl in enumerate(self._levels):
            if any(p.name == self.retry.from_pass for p in lvl):
                return i
        return 0  # unreachable: validated in __init__

    # -- introspection ---------------------------------------------------

    def describe(self) -> str:
        """Human-readable DAG listing (what ``repro describe`` prints)."""
        lines = [f"pipeline: {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append("passes (topological order):")
        for i, p in enumerate(self.topological_order(), start=1):
            deps = ", ".join(p.deps) if p.deps else "-"
            lines.append(f"  {i}. {p.name}  (deps: {deps})")
            if p.description:
                lines.append(f"       {p.description}")
            if p.citation:
                lines.append(f"       [{p.citation}]")
        if self.retry is not None:
            names = ", ".join(e.__name__ for e in self.retry.exceptions)
            lines.append(
                f"retry: on {names} restart from "
                f"{self.retry.from_pass!r} (max {self.retry.max_attempts} "
                "attempts)"
            )
        return "\n".join(lines)
