"""Pass declarations and the shared execution context.

A *pass* is one named stage of a task pipeline — "color splitting",
"algorithm2", "diameter reduction", ... — declared as data: its
dependencies, the context keys it reads and writes, and a runner over a
shared :class:`PipelineContext`.  The declarations are what
:class:`~repro.pipeline.pipeline.Pipeline` validates into a DAG and the
:class:`~repro.pipeline.scheduler.Scheduler` executes (serially in
topological order — the bit-identical reference — or concurrently on
the wave engine's thread pools).

Every executed pass produces one :class:`PassStats` record — wall time,
charged LOCAL rounds, engine waves, fan-out width, reconcile volume and
vertices touched — collected on the context and surfaced as
``result.stats["passes"]``, ``Session.cache_info()`` and
``repro decompose --profile``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class PassStats:
    """Per-pass instrumentation record (stable, documented schema).

    Fields (all in :meth:`to_json`):

    * ``name`` — the declared pass name;
    * ``schedule`` — the schedule the pass executed under
      (``"serial"`` or ``"concurrent"``);
    * ``wall_ms`` — wall-clock milliseconds spent in the runner;
    * ``rounds`` — LOCAL rounds charged to the shared counter during
      the pass;
    * ``engine_waves`` — wave-engine pool dispatches during the pass
      (plus any waves the runner reports via ``ctx.note``);
    * ``items`` — fan-out width (e.g. color classes mapped through
      ``ctx.fan_out``);
    * ``reconcile_volume`` — elements reconciled into shared state
      (edges colored/deleted, vertices claimed), as noted by the
      runner;
    * ``vertices_touched`` — vertices the pass scanned, as noted by
      the runner.
    """

    name: str
    schedule: str = "serial"
    wall_ms: float = 0.0
    rounds: int = 0
    engine_waves: int = 0
    items: int = 0
    reconcile_volume: int = 0
    vertices_touched: int = 0

    def to_json(self) -> Dict[str, Any]:
        """Explicit JSON schema — one key per documented field."""
        return {
            "name": self.name,
            "schedule": self.schedule,
            "wall_ms": self.wall_ms,
            "rounds": self.rounds,
            "engine_waves": self.engine_waves,
            "items": self.items,
            "reconcile_volume": self.reconcile_volume,
            "vertices_touched": self.vertices_touched,
        }


#: runner(ctx) -> None; results travel through the context's declared
#: ``writes`` keys, never through return values.
PassRunner = Callable[["PipelineContext"], None]


@dataclass(frozen=True)
class Pass:
    """One declared pipeline stage.

    ``deps`` are pass names that must complete first; ``reads`` /
    ``writes`` document the context keys the runner touches (passes
    scheduled concurrently must have disjoint writes).  ``citation``
    names the theorem/corollary the stage implements, for
    :func:`repro.describe`.
    """

    name: str
    runner: PassRunner
    deps: Tuple[str, ...] = ()
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    description: str = ""
    citation: str = ""


class PipelineContext:
    """Shared state a pipeline's passes communicate through.

    A dict of values (``ctx["coloring"]``), plus the ambient run
    handles every stage needs: the owning :class:`~repro.core.session.
    Session` (may be ``None`` for standalone function entry points),
    the :class:`~repro.core.config.DecompositionConfig`, the shared
    :class:`~repro.local.rounds.RoundCounter`, and the executing
    scheduler (set by :meth:`Scheduler.run
    <repro.pipeline.scheduler.Scheduler.run>`).

    Runners report instrumentation via :meth:`note` and fan indexed
    work (color classes, vertex chunks) through :meth:`fan_out`; both
    are attributed to the currently executing pass.
    """

    def __init__(
        self,
        session: Any = None,
        config: Any = None,
        counter: Any = None,
        values: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.session = session
        self.config = config
        self.counter = counter
        self.values: Dict[str, Any] = dict(values or {})
        self.pass_stats: List[PassStats] = []
        self.scheduler: Any = None
        # Per-thread current-pass stack so note()/fan_out() attribute
        # correctly even when independent passes run on pool threads.
        self._local = threading.local()

    # -- value access ---------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.values[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def update(self, mapping: Dict[str, Any]) -> None:
        self.values.update(mapping)

    # -- schedule plumbing ----------------------------------------------

    @property
    def schedule(self) -> str:
        """The resolved schedule of the executing scheduler
        (``"serial"`` when running outside one)."""
        if self.scheduler is None:
            return "serial"
        return self.scheduler.schedule

    @property
    def workers(self) -> int:
        if self.scheduler is None:
            return 0
        return self.scheduler.workers

    def fan_out(self, thunks, batched=None) -> list:
        """Run independent thunks as this pass's fan-out unit.

        Serial schedule: a plain in-order loop (the reference).
        Concurrent schedule: the batched kernel when one is provided
        (it must return the same per-item result list), else the
        engine's shared thread pool.  Item order — and therefore any
        in-order reconcile the caller performs — is preserved on every
        path.
        """
        thunks = list(thunks)
        self.note(items=len(thunks))
        if self.scheduler is None:
            return [thunk() for thunk in thunks]
        return self.scheduler.map_items(thunks, batched=batched)

    # -- instrumentation ------------------------------------------------

    def note(self, **fields: int) -> None:
        """Accumulate instrumentation onto the executing pass's
        :class:`PassStats` (``items=``, ``reconcile_volume=``,
        ``vertices_touched=``, ``engine_waves=``).  A no-op outside a
        pass, so stage helpers can note unconditionally."""
        stats = self._current()
        if stats is None:
            return
        for key, value in fields.items():
            setattr(stats, key, getattr(stats, key) + int(value))

    def _current(self) -> Optional[PassStats]:
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _begin(self, stats: PassStats) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(stats)

    def _end(self) -> None:
        stack = getattr(self._local, "stack", None)
        if stack:
            stack.pop()
