"""The delta engine: maintain decompositions under edge-stream mutations.

Harris–Su–Vu's locality is what makes this possible: the H-partition
wave of a vertex is the *unique* fixed point of the local equation

    wave(v) = 1                                    if deg(v) <= t
    wave(v) = 1 + ((t+1)-th largest neighbor wave) otherwise

(uniqueness by the forced-set induction ``S_1 = V``,
``S_{i+1} = { v : deg_{S_i}(v) > t }`` — every solution's superlevel
sets coincide with the peel's).  So after an edge insert/delete only
the endpoints can violate their equation, and a worklist relaxation
that re-evaluates dirty vertices until quiescence is **provably equal
to a from-scratch peel** — which is the hard contract of
:meth:`~repro.core.session.Session.apply_delta`: the post-delta result
is bit-identical to a full recompute on the mutated graph, in every
``delta_mode``.

Layers in this module:

* :func:`patched_snapshot` — rebuild the CSR snapshot in
  O(m) array ops (mask deleted positions, append inserts, re-run the
  shared counting-sort assembly) instead of re-walking the MultiGraph's
  dicts; byte-identical arrays to ``CSRGraph.from_multigraph``.
* :func:`repair_waves` — the dirty-cascade worklist over the snapshot,
  one vectorized order-statistic evaluation per wave
  (:func:`repro.parallel.bfs.segment_kth_largest`), fanned through the
  shared :class:`~repro.parallel.engine.WaveEngine` when a frontier is
  wide enough; aborts (returning None) when the dirty fraction crosses
  the configured threshold so the caller falls back to a full peel.
* :class:`SessionWaveOracle` — the per-graph cache ``h_partition``
  consults (see :func:`repro.decomposition.hpartition.install_wave_oracle`);
  the delta engine repairs its entries in place.
* task refreshers for ``orientation`` / ``pseudoforest`` (method
  ``"hpartition"``), registered on the task registry via
  :func:`repro.core.registry.set_task_delta`: they patch the
  orientation dict for dirty-incident edges only and re-fold the
  pseudoforest indices vectorized.  Tasks without a refresher fall back
  to a full ``session.decompose`` (trivially bit-identical, still
  accelerated by the patched snapshot and the wave oracle).
* the session-facing entry points :func:`watch_task`,
  :func:`apply_delta`, and the O(|delta|)-maintained
  :func:`content_digest` (a multiset blake2b sum over edges plus a
  blake2b chain over the delta journal).
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from ..graph.csr import (
    CSRGraph,
    EdgeArrayMap,
    _concat_ranges,
    _half_edge_csr,
    mutation_fingerprint,
)
from ..decomposition.hpartition import (
    default_threshold,
    install_wave_oracle,
    uninstall_wave_oracle,
)
from ..local.rounds import ensure_counter
from ..parallel.bfs import segment_kth_largest
from ..parallel.engine import FAN_OUT_MIN_HALF_EDGES
from ..core.algorithm_stats import TaskStats
from ..core.config import DecompositionConfig
from ..core.registry import get_task, set_task_delta
from ..core.results import OrientationResult, PseudoforestResult

__all__ = [
    "DeltaInfo",
    "DeltaReport",
    "WatchReport",
    "WatchState",
    "SessionWaveOracle",
    "apply_delta",
    "content_digest",
    "chain_digest",
    "patched_snapshot",
    "repair_waves",
    "watch_task",
    "JOURNAL_CHAIN_SEED",
]

#: the chain digest every session/journal starts from (generation 0)
JOURNAL_CHAIN_SEED = hashlib.blake2b(
    b"repro-delta-journal-v1", digest_size=32
).hexdigest()

_DIGEST_MOD = 1 << 256


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class WatchReport:
    """How one watched task was refreshed by a delta batch."""

    task: str
    mode: str  # "incremental" | "full"
    wall_ms: float
    reason: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "mode": self.mode,
            "wall_ms": round(self.wall_ms, 3),
            "reason": self.reason,
        }


@dataclass
class DeltaReport:
    """Outcome of one :meth:`Session.apply_delta` batch."""

    seq: int
    inserted: Tuple[int, ...]  # edge ids assigned to the inserts
    deleted: Tuple[int, ...]
    delta_mode: str
    dirty_vertices: int
    dirty_fraction: float
    #: dirty vertex count per shard of the session's shard plan (the
    #: worst repaired threshold); empty when nothing was repaired
    shard_dirty: Tuple[int, ...]
    watches: List[WatchReport]
    wall_ms: float
    chain: str
    fingerprint: Tuple[int, int, int]

    @property
    def mode(self) -> str:
        """``"incremental"`` iff every watched task was repaired
        incrementally (vacuously true with no watches)."""
        if all(w.mode == "incremental" for w in self.watches):
            return "incremental"
        return "full"

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "inserted": list(self.inserted),
            "deleted": list(self.deleted),
            "mode": self.mode,
            "delta_mode": self.delta_mode,
            "dirty_vertices": self.dirty_vertices,
            "dirty_fraction": round(self.dirty_fraction, 6),
            "shard_dirty": list(self.shard_dirty),
            "watches": [w.to_json() for w in self.watches],
            "wall_ms": round(self.wall_ms, 3),
            "chain": self.chain,
            "fingerprint": list(self.fingerprint),
        }


@dataclass
class WatchState:
    """One maintained decomposition: the task, its frozen knobs, and
    the most recent result (always equal to a fresh recompute)."""

    task: str
    config: DecompositionConfig
    resolved_config: DecompositionConfig
    kwargs: Dict[str, Any]
    result: Any
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DeltaInfo:
    """What one delta batch did to the graph — the refresher's input."""

    inserts: Tuple[Tuple[int, int, int], ...]  # (eid, u, v)
    deletes: Tuple[Tuple[int, int, int], ...]
    old_snapshot: Optional[CSRGraph]
    new_snapshot: CSRGraph
    kept_mask: Optional[np.ndarray]
    #: threshold -> ascending dense indices whose wave changed (present
    #: only for thresholds whose repair succeeded this batch)
    changed_by_threshold: Dict[int, np.ndarray]


# ----------------------------------------------------------------------
# Snapshot patching
# ----------------------------------------------------------------------


class _SortedEidPos:
    """Array-backed ``edge id -> dense position`` mapping for patched
    snapshots.

    Patched edge ids ascend by construction (the kept prefix preserves
    the old ascending order and fresh insert ids are larger still), so
    a position lookup is one binary search over the snapshot's own
    ``edge_id`` array — no side structure at all.  The dict this
    replaces cost O(m) Python-object work per delta batch (its deferred
    variant still paid the full materialization on the first consumer
    lookup); scalar probes now run ``searchsorted``, and
    :meth:`positions` resolves whole batches vectorized —
    ``CSRGraph.edge_positions`` calls it when present, so the
    full-decompose consumers (sub-CSR extraction, endpoint maps) never
    build a dict either.  Snapshots are immutable, so the mapping is
    valid forever.
    """

    __slots__ = ("_edge_id",)

    def __init__(self, edge_id: np.ndarray) -> None:
        self._edge_id = edge_id

    def positions(self, eids: np.ndarray) -> np.ndarray:
        """Dense positions of a whole id batch (vectorized); raises
        ``KeyError`` on the first unknown id, like the dict would."""
        edge_id = self._edge_id
        found = np.searchsorted(edge_id, eids)
        clipped = np.minimum(found, edge_id.shape[0] - 1)
        bad = (found >= edge_id.shape[0]) | (edge_id[clipped] != eids)
        if np.any(bad):
            raise KeyError(int(np.asarray(eids)[bad][0]))
        return found

    def _find(self, eid: int) -> int:
        pos = int(np.searchsorted(self._edge_id, eid))
        if pos >= int(self._edge_id.shape[0]) or int(self._edge_id[pos]) != eid:
            return -1
        return pos

    def __getitem__(self, eid: int) -> int:
        pos = self._find(eid)
        if pos < 0:
            raise KeyError(eid)
        return pos

    def get(self, eid, default=None):
        pos = self._find(eid)
        return default if pos < 0 else pos

    def __contains__(self, eid) -> bool:
        return self._find(int(eid)) >= 0

    def __len__(self) -> int:
        return int(self._edge_id.shape[0])

    def __iter__(self):
        return iter(self._edge_id.tolist())


def patched_snapshot(
    old: CSRGraph,
    graph,
    inserts: Sequence[Tuple[int, int, int]],
    deletes: Sequence[Tuple[int, int, int]],
) -> Tuple[CSRGraph, Optional[np.ndarray]]:
    """Rebuild ``graph``'s snapshot from the previous one in O(m)
    array work; returns ``(snapshot, kept_mask)``.

    Byte-identical to ``CSRGraph.from_multigraph(graph)``: the
    MultiGraph's edge dict preserves insertion order, so the mutated
    edge list is exactly "old order minus the deleted positions, plus
    the inserts appended" — and both paths run the same stable
    counting-sort CSR assembly.  Requires an unchanged vertex set
    (``apply_delta`` guarantees it; anything else takes the full
    rebuild path).
    """
    if old.num_vertices != graph.n:
        snap = CSRGraph.from_multigraph(graph)
        return snap, None
    keep = np.ones(old.num_edges, dtype=bool)
    if deletes:
        del_ids = np.asarray(sorted(d[0] for d in deletes), dtype=np.int64)
        # edge ids are assigned monotonically, so old.edge_id ascends
        keep[np.searchsorted(old.edge_id, del_ids)] = False
    index_of = old._index_of
    ins_eid = np.asarray([i[0] for i in inserts], dtype=np.int64)
    if index_of is None:
        ins_u = np.asarray([i[1] for i in inserts], dtype=np.int64)
        ins_v = np.asarray([i[2] for i in inserts], dtype=np.int64)
    else:
        ins_u = np.asarray(
            [index_of[i[1]] for i in inserts], dtype=np.int64
        )
        ins_v = np.asarray(
            [index_of[i[2]] for i in inserts], dtype=np.int64
        )
    edge_id = np.concatenate((old.edge_id[keep], ins_eid))
    edge_u = np.concatenate((old.edge_u[keep], ins_u))
    edge_v = np.concatenate((old.edge_v[keep], ins_v))
    m = int(edge_id.shape[0])
    identity_edges = bool(
        m == 0 or np.array_equal(edge_id, np.arange(m, dtype=np.int64))
    )
    eid_pos = None if identity_edges else _SortedEidPos(edge_id)
    offsets, neighbor_ids, edge_ids = _half_edge_csr(
        old.num_vertices, edge_u, edge_v, edge_id
    )
    snap = CSRGraph(
        old.vertex_ids,
        offsets,
        neighbor_ids,
        edge_ids,
        edge_u,
        edge_v,
        edge_id,
        index_of,
        eid_pos,
    )
    return snap, keep


# ----------------------------------------------------------------------
# Wave repair
# ----------------------------------------------------------------------


def _frontier_wave_values(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    waves: np.ndarray,
    frontier: np.ndarray,
    threshold: int,
    engine_factory=None,
) -> np.ndarray:
    """Evaluate the fixed-point equation for an ascending frontier."""

    def kernel(part: np.ndarray) -> np.ndarray:
        starts = offsets[part]
        ends = offsets[part + 1]
        half = _concat_ranges(starts, ends)
        kth = segment_kth_largest(
            waves[neighbors[half]], ends - starts, threshold, fill=0
        )
        return kth + 1

    if engine_factory is not None:
        cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
        if cost >= FAN_OUT_MIN_HALF_EDGES:
            engine = engine_factory()
            if engine is not None:
                return engine.gather(kernel, frontier, cost)
    return kernel(frontier)


def repair_waves(
    snapshot: CSRGraph,
    waves: np.ndarray,
    seeds: np.ndarray,
    threshold: int,
    max_dirty: int,
    engine_factory=None,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Worklist repair of an H-partition wave assignment.

    ``waves`` must satisfy the fixed-point equation everywhere except
    possibly at ``seeds`` (the dense indices incident to the delta).
    Relaxes until quiescence and returns ``(repaired waves, ascending
    changed indices)``; returns None when more than ``max_dirty``
    vertices change (the dirty-fraction fallback) or the iteration cap
    trips.  On success the result *is* the full peel's assignment —
    the fixed point is unique (see the module docstring).
    """
    offsets = snapshot.vertex_offsets
    neighbors = snapshot.neighbor_ids
    n = snapshot.num_vertices
    waves = waves.copy()
    changed_mask = np.zeros(n, dtype=bool)
    total_changed = 0
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    if frontier.size and (frontier[0] < 0 or frontier[-1] >= n):
        raise GraphError("wave-repair seed index out of range")
    cap = 4 * n + 8
    steps = 0
    while frontier.size:
        steps += 1
        if steps > cap:
            return None
        new_vals = _frontier_wave_values(
            offsets, neighbors, waves, frontier, threshold, engine_factory
        )
        diff = new_vals != waves[frontier]
        changed = frontier[diff]
        if changed.size == 0:
            break
        waves[changed] = new_vals[diff]
        newly = changed[~changed_mask[changed]]
        changed_mask[newly] = True
        total_changed += int(newly.size)
        if total_changed > max_dirty:
            return None
        half = _concat_ranges(offsets[changed], offsets[changed + 1])
        frontier = np.unique(neighbors[half])
    return waves, np.flatnonzero(changed_mask)


class SessionWaveOracle:
    """Per-graph cache of peel wave labels, one entry per threshold.

    ``h_partition`` consults :meth:`lookup` before peeling (returning a
    fresh classes dict on a fingerprint hit, charging the same number
    of rounds the peel would) and feeds :meth:`record` after a real
    peel; :func:`apply_delta` repairs every entry in place per batch.
    LRU-bounded so a session sweeping many epsilons stays small.
    """

    MAX_THRESHOLDS = 8

    class Entry:
        __slots__ = ("fingerprint", "waves", "classes")

        def __init__(self, fingerprint, waves, classes):
            self.fingerprint = fingerprint
            self.waves = waves  # dense-index wave array
            self.classes = classes  # vertex id -> wave

    def __init__(self, graph) -> None:
        self.graph = graph
        self.entries: "OrderedDict[int, SessionWaveOracle.Entry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.repairs = 0
        self.fallbacks = 0

    def lookup(self, graph, threshold: int):
        if graph is not self.graph:
            return None
        entry = self.entries.get(threshold)
        if (
            entry is None
            or entry.fingerprint != mutation_fingerprint(graph)
        ):
            self.misses += 1
            return None
        self.entries.move_to_end(threshold)
        self.hits += 1
        return dict(entry.classes)

    def record(self, graph, threshold: int, classes: Dict[int, int]) -> None:
        if graph is not self.graph:
            return
        from ..graph.csr import snapshot_of

        snap = snapshot_of(graph)
        waves = np.fromiter(
            (classes[v] for v in snap.vertex_ids.tolist()),
            dtype=np.int64,
            count=snap.num_vertices,
        )
        self.entries[threshold] = SessionWaveOracle.Entry(
            mutation_fingerprint(graph), waves, dict(classes)
        )
        self.entries.move_to_end(threshold)
        while len(self.entries) > self.MAX_THRESHOLDS:
            self.entries.popitem(last=False)

    def entry(self, threshold: int, fingerprint=None):
        entry = self.entries.get(threshold)
        if entry is None:
            return None
        if fingerprint is not None and entry.fingerprint != fingerprint:
            return None
        return entry

    def drop(self, threshold: int) -> None:
        self.entries.pop(threshold, None)

    def stats(self) -> Dict[str, int]:
        return {
            "thresholds": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "repairs": self.repairs,
            "fallbacks": self.fallbacks,
        }


# ----------------------------------------------------------------------
# Session delta state
# ----------------------------------------------------------------------


class DeltaState:
    """Everything :meth:`Session.apply_delta` keeps between batches."""

    def __init__(self, session) -> None:
        self.session = session
        self.oracle = SessionWaveOracle(session.graph)
        install_wave_oracle(session.graph, self.oracle)
        self.seq = 0
        self.chain = JOURNAL_CHAIN_SEED
        #: fingerprint after the last batch (None = never synced)
        self.fingerprint: Optional[Tuple[int, int, int]] = None
        #: multiset digest sums, valid iff digest_fp matches the graph
        self.digest_fp: Optional[Tuple[int, int, int]] = None
        self.edge_sum = 0
        self.vertex_sum = 0

    def close(self) -> None:
        uninstall_wave_oracle(self.session.graph)


def ensure_delta_state(session) -> DeltaState:
    state = getattr(session, "_delta_state", None)
    if state is None or state.session is not session:
        state = DeltaState(session)
        session._delta_state = state
    return state


# ----------------------------------------------------------------------
# Content digest (O(|delta|) maintained) and journal chaining
# ----------------------------------------------------------------------


def _token(payload: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=32).digest(), "big"
    )


def _edge_token(eid: int, u: int, v: int) -> int:
    return _token(b"e:%d:%d:%d" % (eid, u, v))


def _vertex_token(v: int) -> int:
    return _token(b"v:%d" % v)


def _resync_digest(state: DeltaState) -> None:
    graph = state.session.graph
    state.vertex_sum = (
        sum(_vertex_token(v) for v in graph._adj) % _DIGEST_MOD
    )
    state.edge_sum = (
        sum(
            _edge_token(eid, u, v)
            for eid, (u, v) in graph._edges.items()
        )
        % _DIGEST_MOD
    )
    state.digest_fp = mutation_fingerprint(graph)


def content_digest(session) -> str:
    """A digest of the graph's full content (vertex set + edge
    multiset with ids), maintained in O(|delta|) per
    :meth:`Session.apply_delta` batch.

    Edges and vertices contribute independent blake2b tokens summed
    mod 2**256, so inserts add and deletes subtract — the maintained
    value always equals a from-scratch recomputation (which only runs
    when the graph was mutated outside ``apply_delta``).
    """
    state = ensure_delta_state(session)
    if state.digest_fp != mutation_fingerprint(session.graph):
        _resync_digest(state)
    graph = session.graph
    head = "repro-content-v1:%d:%d:%d:%d:%064x:%064x" % (
        graph.n,
        graph.m,
        graph._next_edge,
        graph._next_vertex,
        state.vertex_sum,
        state.edge_sum,
    )
    return hashlib.blake2b(head.encode(), digest_size=32).hexdigest()


def chain_digest(prev: str, payload: Dict[str, Any]) -> str:
    """One blake2b link of the delta-journal chain: the previous chain
    value concatenated with the batch's canonical JSON."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(
        (prev + canonical).encode(), digest_size=32
    ).hexdigest()


# ----------------------------------------------------------------------
# Watching
# ----------------------------------------------------------------------


def watch_task(session, task: str, config, kwargs: Dict[str, Any]):
    """Run ``task`` once and register it for delta maintenance."""
    state = ensure_delta_state(session)
    spec = get_task(task)
    cfg = config if config is not None else session.config
    result = session.decompose(task, config=cfg, **kwargs)
    ws = WatchState(
        task=task,
        config=cfg,
        resolved_config=cfg.with_defaults(spec.default_epsilon),
        kwargs=dict(kwargs),
        result=result,
        extras={},
    )
    _prime_watch_extras(session, state, ws)
    session._watches[task] = ws
    if state.fingerprint is None:
        state.fingerprint = session.fingerprint()
    return result


def _watch_options(ws: WatchState) -> Dict[str, Any]:
    """The task kwargs the dispatcher would see: ``config.options``
    overlaid with the watch's direct kwargs (direct wins)."""
    merged = dict(ws.resolved_config.options)
    merged.update(ws.kwargs)
    return merged


def _watch_threshold(session, ws: WatchState) -> Optional[int]:
    """The peel threshold this watch's hpartition run uses (None when
    the watch is not an hpartition-method orientation/pseudoforest)."""
    if ws.task not in ("orientation", "pseudoforest"):
        return None
    merged = _watch_options(ws)
    if merged.get("method") != "hpartition":
        return None
    pseudo = merged.get("pseudoarboricity")
    if pseudo is None:
        pseudo = session.pseudoarboricity()
    return max(1, default_threshold(pseudo, ws.resolved_config.epsilon))


def _tails_arrays(
    snap: CSRGraph, waves: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Theorem 2.1(2) rule over every edge: returns
    ``(tail vertex ids, tail dense indices)`` per edge position —
    exactly :func:`~repro.decomposition.hpartition.acyclic_orientation`'s
    ``u_wins`` comparison."""
    cu = waves[snap.edge_u]
    cv = waves[snap.edge_v]
    u_wins = (cu < cv) | ((cu == cv) & (snap.edge_u_ids < snap.edge_v_ids))
    tails_ids = np.where(u_wins, snap.edge_u_ids, snap.edge_v_ids)
    tails_idx = np.where(u_wins, snap.edge_u, snap.edge_v)
    return tails_ids, tails_idx


def _prime_watch_extras(session, state: DeltaState, ws: WatchState) -> None:
    """Seed the per-watch incremental scratch (the orientation dict the
    refreshers patch) after a full run."""
    ws.extras.clear()
    threshold = _watch_threshold(session, ws)
    if threshold is None:
        return
    entry = state.oracle.entry(threshold, session.fingerprint())
    if entry is None:
        return
    ws.extras["threshold"] = threshold
    if ws.task == "orientation":
        ws.extras["orientation"] = ws.result.orientation
    else:
        snap = session.snapshot()
        tails_ids, _tails_idx = _tails_arrays(snap, entry.waves)
        ws.extras["orientation"] = EdgeArrayMap(snap.edge_id, tails_ids)


# ----------------------------------------------------------------------
# Task refreshers
# ----------------------------------------------------------------------


def _patched_orientation(
    session, ws: WatchState, info: DeltaInfo
) -> Optional[Tuple[EdgeArrayMap, np.ndarray, int]]:
    """Shared incremental core of the orientation/pseudoforest
    refreshers: returns ``(orientation mapping, tail dense indices per
    edge position, threshold)`` or None when repair is impossible.

    The patch tail is flat array work end to end: the Theorem 2.1(2)
    rule is a pure function of the repaired waves and the patched edge
    arrays, so the new orientation is one vectorized
    :func:`_tails_arrays` pass wrapped in an
    :class:`~repro.graph.csr.EdgeArrayMap` — no O(m) dict copy, no
    per-edge scatter loop.  Unaffected edges recompute to exactly
    their previous tails (neither endpoint's wave changed), so the
    result is bit-identical to the historical copy-pop-patch dict.
    The primed ``extras["orientation"]`` entry still gates the path:
    its absence means the last full run predates this watch's scratch
    and repair must fall back.
    """
    state = getattr(session, "_delta_state", None)
    if state is None:
        return None
    if ws.extras.get("orientation") is None:
        return None
    threshold = _watch_threshold(session, ws)
    if threshold is None or threshold != ws.extras.get("threshold"):
        return None
    if info.changed_by_threshold.get(threshold) is None:
        return None
    entry = state.oracle.entry(threshold, session.fingerprint())
    if entry is None:
        return None
    snap = info.new_snapshot
    tails_ids, tails_idx = _tails_arrays(snap, entry.waves)
    return EdgeArrayMap(snap.edge_id, tails_ids), tails_idx, threshold


def _refresh_orientation(session, ws: WatchState, info: DeltaInfo):
    patched = _patched_orientation(session, ws, info)
    if patched is None:
        return None
    orientation, _tails_idx, threshold = patched
    ws.extras["orientation"] = orientation
    counter = ensure_counter(None)
    counter.charge(1, "delta: orientation patch")
    return OrientationResult(
        orientation, threshold, rounds=counter, stats=TaskStats(),
        graph=session.graph,
    )


def _fold_pseudoforests(
    edge_id: np.ndarray, tails_idx: np.ndarray
) -> "EdgeArrayMap | Dict[int, int]":
    """Vectorized equivalent of
    :func:`~repro.nashwilliams.pseudoarboricity.
    pseudoforest_decomposition_from_orientation`: rank each edge among
    its tail's out-edges in ascending edge-id order (edge positions
    ascend by id, so a stable argsort by tail gives the running
    index).  Returns an array-backed mapping — dict-equal to the
    reference fold, without m boxed ints."""
    m = int(edge_id.shape[0])
    if m == 0:
        return {}
    order = np.argsort(tails_idx, kind="stable")
    sorted_tails = tails_idx[order]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_tails[1:], sorted_tails[:-1], out=boundary[1:])
    group_starts = np.flatnonzero(boundary)
    start_per_item = group_starts[np.cumsum(boundary) - 1]
    ranks = np.arange(m, dtype=np.int64) - start_per_item
    k = np.empty(m, dtype=np.int64)
    k[order] = ranks
    return EdgeArrayMap(edge_id, k)


def _refresh_pseudoforest(session, ws: WatchState, info: DeltaInfo):
    patched = _patched_orientation(session, ws, info)
    if patched is None:
        return None
    orientation, tails_idx, threshold = patched
    ws.extras["orientation"] = orientation
    coloring = _fold_pseudoforests(info.new_snapshot.edge_id, tails_idx)
    counter = ensure_counter(None)
    counter.charge(1, "delta: orientation patch + fold")
    return PseudoforestResult(
        coloring, threshold, rounds=counter, stats=TaskStats(),
        graph=session.graph,
    )


set_task_delta("orientation", _refresh_orientation)
set_task_delta("pseudoforest", _refresh_pseudoforest)


# ----------------------------------------------------------------------
# apply_delta
# ----------------------------------------------------------------------


def _validate_batch(graph, inserts, deletes):
    """Pre-validate the whole batch so a bad edit leaves the graph
    untouched (apply_delta is atomic per batch)."""
    ins = [(int(u), int(v)) for u, v in inserts]
    dels = [int(e) for e in deletes]
    if len(set(dels)) != len(dels):
        raise GraphError("duplicate edge ids in delete batch")
    del_records = []
    for eid in dels:
        u, v = graph.endpoints(eid)  # raises GraphError when missing
        del_records.append((eid, u, v))
    for u, v in ins:
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        for vertex in (u, v):
            if not graph.has_vertex(vertex):
                raise GraphError(f"vertex {vertex} does not exist")
    return ins, del_records


def _seed_indices(snap: CSRGraph, info_edges) -> np.ndarray:
    ids = set()
    for _eid, u, v in info_edges:
        ids.add(u)
        ids.add(v)
    if not ids:
        return np.empty(0, dtype=np.int64)
    index_of = snap._index_of
    if index_of is None:
        idx = np.fromiter(ids, dtype=np.int64, count=len(ids))
    else:
        idx = np.fromiter(
            (index_of[v] for v in ids), dtype=np.int64, count=len(ids)
        )
    return np.unique(idx)


def _shard_dirty_counts(session, changed: np.ndarray) -> Tuple[int, ...]:
    """Dirty vertices per shard of the session's cached plan."""
    if changed.size == 0:
        return ()
    plan = session.shard_plan()
    positions = np.searchsorted(changed, plan.boundaries)
    return tuple(int(c) for c in np.diff(positions))


def apply_delta(
    session,
    inserts: Sequence[Tuple[int, int]] = (),
    deletes: Sequence[int] = (),
    config: Optional[DecompositionConfig] = None,
) -> DeltaReport:
    """Apply one batch of edge mutations and refresh every watched
    decomposition (see :meth:`Session.apply_delta` for the contract)."""
    start = time.perf_counter()
    state = ensure_delta_state(session)
    graph = session.graph
    cfg = config if config is not None else session.config
    if not isinstance(cfg, DecompositionConfig):
        raise GraphError(
            f"config must be a DecompositionConfig, got {type(cfg).__name__}"
        )
    mode = cfg.delta_mode

    ins, del_records = _validate_batch(graph, inserts, deletes)

    old_fp = mutation_fingerprint(graph)
    cached = graph.__dict__.get("_csr_snapshot_cache")
    old_snap = cached[1] if cached is not None and cached[0] == old_fp else None
    digest_live = state.digest_fp == old_fp

    # -- mutate -------------------------------------------------------
    for eid, _u, _v in del_records:
        graph.remove_edge(eid)
    ins_records = tuple((graph.add_edge(u, v), u, v) for u, v in ins)
    del_records = tuple(del_records)
    new_fp = mutation_fingerprint(graph)

    # -- O(|delta|) digest maintenance --------------------------------
    if digest_live:
        delta_sum = 0
        for eid, u, v in ins_records:
            delta_sum += _edge_token(eid, u, v)
        for eid, u, v in del_records:
            delta_sum -= _edge_token(eid, u, v)
        state.edge_sum = (state.edge_sum + delta_sum) % _DIGEST_MOD
        state.digest_fp = new_fp

    # -- snapshot patch -----------------------------------------------
    if old_snap is not None:
        new_snap, kept = patched_snapshot(
            old_snap, graph, ins_records, del_records
        )
    else:
        new_snap = CSRGraph.from_multigraph(graph)
        kept = None
    graph.__dict__["_csr_snapshot_cache"] = (new_fp, new_snap)

    # -- wave repair over every cached threshold ----------------------
    n = new_snap.num_vertices
    changed_by_threshold: Dict[int, np.ndarray] = {}
    oracle = state.oracle
    if mode == "full":
        max_dirty = -1
    elif mode == "incremental":
        max_dirty = n + 1
    else:
        max_dirty = int(cfg.delta_threshold * n)
    seeds = _seed_indices(new_snap, ins_records + del_records)

    def engine_factory():
        try:
            return session.wave_engine()
        except Exception:
            return None

    for threshold in list(oracle.entries.keys()):
        entry = oracle.entries[threshold]
        if entry.fingerprint != old_fp or mode == "full":
            oracle.drop(threshold)
            continue
        repaired = repair_waves(
            new_snap, entry.waves, seeds, threshold, max_dirty,
            engine_factory,
        )
        if repaired is None:
            oracle.fallbacks += 1
            oracle.drop(threshold)
            continue
        waves, changed = repaired
        entry.waves = waves
        vertex_ids = new_snap.vertex_ids
        for idx in changed.tolist():
            entry.classes[int(vertex_ids[idx])] = int(waves[idx])
        entry.fingerprint = new_fp
        oracle.repairs += 1
        changed_by_threshold[threshold] = changed

    info = DeltaInfo(
        inserts=ins_records,
        deletes=del_records,
        old_snapshot=old_snap,
        new_snapshot=new_snap,
        kept_mask=kept,
        changed_by_threshold=changed_by_threshold,
    )

    # -- refresh watches ----------------------------------------------
    watch_reports: List[WatchReport] = []
    for task, ws in session._watches.items():
        spec = get_task(task)
        t0 = time.perf_counter()
        result = None
        wmode = "full"
        reason = ""
        if spec.delta is not None and mode != "full":
            result = spec.delta(session, ws, info)
            if result is not None:
                wmode = "incremental"
        if result is None:
            if mode == "full":
                reason = "delta_mode=full"
            elif spec.delta is None:
                reason = "no incremental refresher"
            else:
                reason = "refresher fell back"
            result = session.decompose(task, config=ws.config, **ws.kwargs)
            # Bind the fresh result BEFORE priming: the orientation
            # watch's patch base is read off ws.result, and priming
            # against the stale one would leave the next incremental
            # batch patching on top of a pre-fallback orientation.
            ws.result = result
            _prime_watch_extras(session, state, ws)
        else:
            resolved = ws.resolved_config
            if result.graph is None:
                result.graph = graph
            result.config = resolved
            session._record_passes(result)
            if resolved.validation != "none":
                result.validate(level=resolved.validation)
        ws.result = result
        watch_reports.append(
            WatchReport(
                task=task,
                mode=wmode,
                wall_ms=(time.perf_counter() - t0) * 1000.0,
                reason=reason,
            )
        )

    # -- journal chain + report ---------------------------------------
    state.seq += 1
    payload = {
        "seq": state.seq,
        "inserts": [[u, v] for u, v in ins],
        "deletes": [eid for eid, _u, _v in del_records],
    }
    state.chain = chain_digest(state.chain, payload)
    state.fingerprint = new_fp

    dirty = max(
        (int(c.size) for c in changed_by_threshold.values()), default=0
    )
    worst = max(
        changed_by_threshold.values(), key=lambda c: c.size, default=None
    ) if changed_by_threshold else None
    report = DeltaReport(
        seq=state.seq,
        inserted=tuple(eid for eid, _u, _v in ins_records),
        deleted=tuple(eid for eid, _u, _v in del_records),
        delta_mode=mode,
        dirty_vertices=dirty,
        dirty_fraction=dirty / n if n else 0.0,
        shard_dirty=_shard_dirty_counts(session, worst)
        if worst is not None else (),
        watches=watch_reports,
        wall_ms=(time.perf_counter() - start) * 1000.0,
        chain=state.chain,
        fingerprint=new_fp,
    )
    session._delta_reports.append(report)
    del session._delta_reports[:-256]
    return report
