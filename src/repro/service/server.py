"""``repro serve`` — the long-lived incremental decomposition daemon.

One process holds one shared :class:`~repro.core.session.Session`
behind a line-delimited-JSON TCP socket.  Clients load a graph, watch
tasks, stream delta batches, and query decompositions; the delta
engine (:mod:`repro.service.delta`) keeps every watched result
bit-identical to a from-scratch recompute while paying only for the
dirty cascade.

Protocol: one JSON object per line in, one JSON object per line out,
in order.  Requests carry ``{"op": ..., ...}`` plus an optional
``"id"`` echoed back; responses carry ``{"ok": true, ...}`` or
``{"ok": false, "error": ..., "error_kind": ...}``.  Ops:

``ping`` · ``load_graph`` · ``watch`` · ``unwatch`` · ``apply_delta``
· ``query`` · ``current`` · ``stats`` · ``checkpoint`` · ``shutdown``

Concurrency: the listener is a threading TCP server (one thread per
connection), but every op that touches the session runs under one
lock — the session is the unit of consistency, and serializing its
ops is what makes the delta journal a total order.  Repeated
``query`` ops against an unchanged graph are deduplicated by a
fingerprint-keyed cache, so N concurrent identical queries compute
once (the rest are cache hits that only briefly hold the lock).

Durability: every applied delta batch is appended (flushed + fsynced)
to the checkpoint journal *before* its acknowledgment is sent, and
every ``checkpoint_every`` batches the daemon writes a full snapshot
generation (:mod:`repro.service.checkpoint`).  ``kill -9`` at any
instant loses at most the unacknowledged in-flight batch;
``repro serve --resume`` replays the journal and reconstructs the
exact pre-crash state.  SIGTERM/SIGINT trigger a graceful exit:
final checkpoint, socket teardown, and
:func:`repro.parallel.engine.shutdown` so no worker thread outlives
the daemon.

Per-request structured logs (JSON lines: op, wall time, outcome) and
PassStats-style per-op totals (``stats`` op) make the daemon
observable without parsing human text.
"""

from __future__ import annotations

import json
import os
import signal
import socketserver
import sys
import threading
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict, Optional, TextIO

from .. import __version__
from ..core.config import DecompositionConfig
from ..core.session import Session
from ..errors import GraphError, ReproError
from ..graph.multigraph import MultiGraph
from ..parallel.engine import pool_stats
from ..parallel.engine import shutdown as engine_shutdown
from . import checkpoint as checkpoint_mod
from .checkpoint import Checkpointer, restore_session

__all__ = ["ReproServer", "serve", "READY_PREFIX"]

#: the daemon's stdout handshake; scripts wait for this line.
READY_PREFIX = "REPRO_SERVE_READY"

#: LRU bound on the query dedup cache (per (fingerprint, task, knobs)).
QUERY_CACHE_SIZE = 32


def _summarize(session: Session, result) -> Dict[str, Any]:
    """Small JSON summary of a decomposition result (the full
    ``to_json`` payload is returned only on request — colorings are
    O(m))."""
    payload: Dict[str, Any] = {
        "kind": result.kind,
        "colors": result.num_colors(),
        "n": session.graph.n,
        "m": session.graph.m,
    }
    for attr in ("bound", "k", "threshold", "colors_used", "color_budget"):
        value = getattr(result, attr, None)
        if isinstance(value, int):
            payload[attr] = value
    rounds = getattr(result, "rounds", None)
    if rounds is not None:
        payload["rounds"] = rounds.total
    return payload


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, dispatch, write JSON lines."""

    def handle(self) -> None:
        server: "ReproServer" = self.server.repro  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as error:
                response = {
                    "ok": False,
                    "error": f"bad request line: {error}",
                    "error_kind": "ProtocolError",
                }
            else:
                response = server.handle(request)
            self.wfile.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                break


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ReproServer:
    """The daemon's engine room, usable in-process (tests) or behind
    :func:`serve` (the CLI)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[DecompositionConfig] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 16,
        log_stream: Optional[TextIO] = None,
        resume: bool = False,
    ) -> None:
        self.config = config if config is not None else DecompositionConfig()
        self.checkpoint_every = max(0, int(checkpoint_every))
        self._lock = threading.RLock()
        self._log_stream = log_stream
        self._log_lock = threading.Lock()
        self._started = time.time()
        self._shutdown_event = threading.Event()
        self._request_stats: Dict[str, Dict[str, float]] = {}
        self._query_cache: "OrderedDict[tuple, Any]" = OrderedDict()
        self._query_hits = 0
        self._query_misses = 0
        self.session: Optional[Session] = None
        self.checkpointer: Optional[Checkpointer] = None
        self.resumed = False

        if checkpoint_dir:
            if resume:
                restored = checkpoint_mod.load(checkpoint_dir)
                if restored is not None:
                    self.session = restore_session(restored)
                    self.config = restored.config
                    self.resumed = True
                    self.log(
                        "resume",
                        generation=restored.generation,
                        replayed=restored.replayed,
                        seq=restored.seq,
                        n=restored.graph.n,
                        m=restored.graph.m,
                    )
            self.checkpointer = Checkpointer(checkpoint_dir)
            if self.resumed and self.session is not None:
                # Compact immediately: the replayed journal folds into
                # a fresh generation, so a second crash replays nothing.
                self.checkpointer.checkpoint(self.session)
        elif resume:
            raise GraphError("--resume requires a checkpoint directory")

        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.repro = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple:
        """``(host, port)`` the daemon is bound to."""
        return self._tcp.server_address

    def start(self) -> None:
        """Serve connections on a background thread (returns at once)."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a ``shutdown`` op or :meth:`trigger_shutdown`."""
        return self._shutdown_event.wait(timeout)

    def trigger_shutdown(self) -> None:
        self._shutdown_event.set()

    def stop(self, final_checkpoint: bool = True) -> None:
        """Graceful teardown: final checkpoint, close the socket, shut
        down the shared worker pools (no thread outlives the daemon)."""
        with self._lock:
            if (
                final_checkpoint
                and self.checkpointer is not None
                and self.session is not None
            ):
                generation = self.checkpointer.checkpoint(self.session)
                self.log("checkpoint", generation=generation, reason="exit")
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.checkpointer is not None:
            self.checkpointer.close()
        engine_shutdown()
        self.log("shutdown", uptime_s=round(time.time() - self._started, 3))

    # -- logging / stats ----------------------------------------------

    def log(self, event: str, **fields: Any) -> None:
        """One structured JSON log line (no-op without a log stream)."""
        if self._log_stream is None:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        with self._log_lock:
            self._log_stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_stream.flush()

    def _account(self, op: str, wall_ms: float, ok: bool) -> None:
        stats = self._request_stats.setdefault(
            op, {"requests": 0, "errors": 0, "wall_ms": 0.0}
        )
        stats["requests"] += 1
        stats["wall_ms"] += wall_ms
        if not ok:
            stats["errors"] += 1

    # -- dispatch ------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request dict to its op handler; never raises."""
        op = str(request.get("op", ""))
        start = time.perf_counter()
        handler = getattr(self, f"_op_{op}", None)
        try:
            if handler is None:
                raise GraphError(f"unknown op {op!r}")
            response = handler(request)
            response.setdefault("ok", True)
        except ReproError as error:
            response = {
                "ok": False,
                "error": str(error),
                "error_kind": type(error).__name__,
            }
        except Exception as error:  # noqa: BLE001 — daemon must not die
            response = {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
                "error_kind": "InternalError",
            }
            self.log("internal_error", op=op, trace=traceback.format_exc())
        wall_ms = (time.perf_counter() - start) * 1000.0
        response["op"] = op
        if "id" in request:
            response["id"] = request["id"]
        self._account(op, wall_ms, bool(response.get("ok")))
        self.log(
            "request",
            op=op,
            ok=bool(response.get("ok")),
            wall_ms=round(wall_ms, 3),
            **({"id": request["id"]} if "id" in request else {}),
        )
        return response

    def _require_session(self) -> Session:
        if self.session is None:
            raise GraphError("no graph loaded; send a load_graph op first")
        return self.session

    @staticmethod
    def _parse_config(payload) -> Optional[DecompositionConfig]:
        if payload is None:
            return None
        if not isinstance(payload, dict):
            raise GraphError("config must be a JSON object")
        return DecompositionConfig.from_json(payload)

    # -- ops -----------------------------------------------------------

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            session = self.session
            payload = {
                "pid": os.getpid(),
                "version": __version__,
                "uptime_s": round(time.time() - self._started, 3),
                "loaded": session is not None,
                "resumed": self.resumed,
            }
            if session is not None:
                state = session._delta_state
                payload.update(
                    n=session.graph.n,
                    m=session.graph.m,
                    seq=state.seq if state is not None else 0,
                    watched=list(session.watched()),
                )
        return payload

    def _op_load_graph(self, request: Dict[str, Any]) -> Dict[str, Any]:
        config = self._parse_config(request.get("config"))
        if "path" in request:
            from ..graph.io import read_edge_list

            graph = read_edge_list(str(request["path"]))
        elif "edges" in request:
            n = int(request.get("n", 0))
            pairs = [(int(u), int(v)) for u, v in request["edges"]]
            if n <= 0:
                n = 1 + max(
                    (max(u, v) for u, v in pairs), default=-1
                )
            graph = MultiGraph.from_edges(n, pairs)
        else:
            raise GraphError("load_graph needs 'edges' or 'path'")
        with self._lock:
            if config is not None:
                self.config = config
            self.session = Session(graph, self.config)
            self._query_cache.clear()
            if self.checkpointer is not None:
                generation = self.checkpointer.checkpoint(self.session)
                self.log("checkpoint", generation=generation, reason="load")
        return {"n": graph.n, "m": graph.m}

    def _op_watch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        task = str(request.get("task", "forest"))
        config = self._parse_config(request.get("config"))
        kwargs = request.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise GraphError("kwargs must be a JSON object")
        with self._lock:
            session = self._require_session()
            result = session.watch(task, config=config, **kwargs)
            summary = _summarize(session, result)
            if self.checkpointer is not None:
                # Watches are part of the resumable state; persist the
                # new watch list right away.
                generation = self.checkpointer.checkpoint(self.session)
                self.log("checkpoint", generation=generation, reason="watch")
        return {"task": task, "result": summary}

    def _op_unwatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        task = request.get("task")
        with self._lock:
            session = self._require_session()
            session.unwatch(None if task is None else str(task))
            return {"watched": list(session.watched())}

    def _op_apply_delta(self, request: Dict[str, Any]) -> Dict[str, Any]:
        inserts = [
            (int(u), int(v)) for u, v in request.get("inserts", ())
        ]
        deletes = [int(e) for e in request.get("deletes", ())]
        with self._lock:
            session = self._require_session()
            report = session.apply_delta(inserts, deletes)
            if self.checkpointer is not None:
                # Journal (fsynced) before the ack leaves this method:
                # an acknowledged batch always survives kill -9.
                self.checkpointer.journal(
                    {
                        "seq": report.seq,
                        "inserts": [[u, v] for u, v in inserts],
                        "deletes": deletes,
                    },
                    report.chain,
                )
                if (
                    self.checkpoint_every
                    and self.checkpointer.journaled >= self.checkpoint_every
                ):
                    generation = self.checkpointer.checkpoint(session)
                    self.log(
                        "checkpoint", generation=generation, reason="periodic"
                    )
        return {"report": report.to_json()}

    def _query_key(self, session, task, config, kwargs) -> tuple:
        knobs = json.dumps(
            {
                "config": config.to_json() if config is not None else None,
                "kwargs": kwargs,
            },
            sort_keys=True,
        )
        return (session.fingerprint(), task, knobs)

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        task = str(request.get("task", "forest"))
        config = self._parse_config(request.get("config"))
        kwargs = request.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise GraphError("kwargs must be a JSON object")
        include = str(request.get("include", "summary"))
        with self._lock:
            session = self._require_session()
            key = self._query_key(session, task, config, kwargs)
            cached = True
            if key in self._query_cache:
                self._query_cache.move_to_end(key)
                result = self._query_cache[key]
                self._query_hits += 1
            else:
                result = session.decompose(task, config=config, **kwargs)
                self._query_cache[key] = result
                while len(self._query_cache) > QUERY_CACHE_SIZE:
                    self._query_cache.popitem(last=False)
                self._query_misses += 1
                cached = False
            payload: Dict[str, Any] = {
                "task": task,
                "cached": cached,
                "result": _summarize(session, result),
            }
            if include == "full":
                payload["full"] = result.to_json()
        return payload

    def _op_current(self, request: Dict[str, Any]) -> Dict[str, Any]:
        task = str(request.get("task", "forest"))
        include = str(request.get("include", "summary"))
        with self._lock:
            session = self._require_session()
            result = session.current(task)
            state = session._delta_state
            payload = {
                "task": task,
                "seq": state.seq if state is not None else 0,
                "result": _summarize(session, result),
            }
            if include == "full":
                payload["full"] = result.to_json()
        return payload

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            session = self.session
            requests = {
                op: {
                    "requests": int(s["requests"]),
                    "errors": int(s["errors"]),
                    "wall_ms": round(s["wall_ms"], 3),
                }
                for op, s in sorted(self._request_stats.items())
            }
            payload: Dict[str, Any] = {
                "uptime_s": round(time.time() - self._started, 3),
                "requests": requests,
                "query_cache": {
                    "size": len(self._query_cache),
                    "hits": self._query_hits,
                    "misses": self._query_misses,
                },
                "pools": pool_stats(),
            }
            if session is not None:
                state = session._delta_state
                payload["session"] = {
                    "n": session.graph.n,
                    "m": session.graph.m,
                    "watched": list(session.watched()),
                    "seq": state.seq if state is not None else 0,
                    "delta": (
                        state.oracle.stats() if state is not None else {}
                    ),
                    "content_digest": session.content_digest(),
                }
            if self.checkpointer is not None:
                payload["checkpoint"] = {
                    "directory": self.checkpointer.directory,
                    "generation": self.checkpointer.generation,
                    "journaled": self.checkpointer.journaled,
                }
        return payload

    def _op_checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            session = self._require_session()
            if self.checkpointer is None:
                raise GraphError(
                    "daemon was started without a checkpoint directory"
                )
            generation = self.checkpointer.checkpoint(session)
        self.log("checkpoint", generation=generation, reason="request")
        return {"generation": generation}

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Ack first (the handler writes the response, then the accept
        # loop is stopped by whoever waits on the event).
        self.trigger_shutdown()
        return {"stopping": True}


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[DecompositionConfig] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 16,
    resume: bool = False,
    graph_path: Optional[str] = None,
    log_stream: Optional[TextIO] = None,
    ready_stream: Optional[TextIO] = None,
    install_signal_handlers: bool = True,
) -> int:
    """Run the daemon until a shutdown op or SIGTERM/SIGINT.

    Prints the ``REPRO_SERVE_READY port=<p> pid=<p>`` handshake once
    the socket is bound.  On signal: final checkpoint, socket close,
    worker-pool shutdown — then returns 0.
    """
    server = ReproServer(
        host=host,
        port=port,
        config=config,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        log_stream=log_stream,
        resume=resume,
    )
    if graph_path and server.session is None:
        server.handle({"op": "load_graph", "path": graph_path})

    stop_reason = {"value": "shutdown-op"}
    if install_signal_handlers:

        def _on_signal(signum, _frame):
            stop_reason["value"] = signal.Signals(signum).name
            server.trigger_shutdown()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    server.start()
    out = ready_stream if ready_stream is not None else sys.stdout
    host_bound, port_bound = server.address[:2]
    out.write(
        f"{READY_PREFIX} host={host_bound} port={port_bound} "
        f"pid={os.getpid()}\n"
    )
    out.flush()
    server.log("ready", host=host_bound, port=port_bound, pid=os.getpid())

    server.wait_for_shutdown()
    server.log("stopping", reason=stop_reason["value"])
    server.stop(final_checkpoint=True)
    return 0
