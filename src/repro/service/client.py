"""Client for the ``repro serve`` daemon.

A thin wrapper over the line-delimited-JSON protocol
(:mod:`repro.service.server`): one persistent socket, one JSON object
per line each way, responses matched to requests by strict in-order
delivery.  Errors come back as ``{"ok": false, ...}`` and are raised
as :class:`ServeError` carrying the daemon-side error kind.

    with ServeClient("127.0.0.1", 7341) as client:
        client.load_graph(edges=[(0, 1), (1, 2)], n=3)
        client.watch("orientation", method="hpartition")
        report = client.apply_delta(inserts=[(0, 2)])
        current = client.current("orientation")
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """A daemon-side failure, re-raised client-side.

    ``kind`` carries the daemon's error class name (``GraphError``,
    ``ValidationError``, ``InternalError``, ...).
    """

    def __init__(self, message: str, kind: str = "ServeError") -> None:
        super().__init__(message)
        self.kind = kind


class ServeClient:
    """One connection to a running daemon (context-manager friendly)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, self.port), timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ----------------------------------------------------------

    def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """One round-trip; returns the response dict (``ok`` true) or
        raises :class:`ServeError`."""
        self._next_id += 1
        message = {"op": op, "id": self._next_id}
        message.update(payload)
        self._sock.sendall(
            (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
        )
        raw = self._rfile.readline()
        if not raw:
            raise ServeError(
                f"daemon closed the connection during {op!r}", "ConnectionLost"
            )
        response = json.loads(raw.decode("utf-8"))
        if not response.get("ok"):
            raise ServeError(
                response.get("error", "unknown daemon error"),
                response.get("error_kind", "ServeError"),
            )
        return response

    # -- convenience ops ----------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def load_graph(
        self,
        edges: Optional[Sequence[Tuple[int, int]]] = None,
        n: Optional[int] = None,
        path: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if path is not None:
            payload["path"] = path
        if edges is not None:
            payload["edges"] = [[int(u), int(v)] for u, v in edges]
        if n is not None:
            payload["n"] = int(n)
        if config is not None:
            payload["config"] = config
        return self.request("load_graph", **payload)

    def watch(
        self,
        task: str,
        config: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"task": task, "kwargs": kwargs}
        if config is not None:
            payload["config"] = config
        return self.request("watch", **payload)

    def unwatch(self, task: Optional[str] = None) -> Dict[str, Any]:
        payload = {} if task is None else {"task": task}
        return self.request("unwatch", **payload)

    def apply_delta(
        self,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[int] = (),
    ) -> Dict[str, Any]:
        return self.request(
            "apply_delta",
            inserts=[[int(u), int(v)] for u, v in inserts],
            deletes=[int(e) for e in deletes],
        )

    def query(
        self,
        task: str,
        config: Optional[Dict[str, Any]] = None,
        include: str = "summary",
        **kwargs: Any,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "task": task, "kwargs": kwargs, "include": include
        }
        if config is not None:
            payload["config"] = config
        return self.request("query", **payload)

    def current(self, task: str, include: str = "summary") -> Dict[str, Any]:
        return self.request("current", task=task, include=include)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def checkpoint(self) -> Dict[str, Any]:
        return self.request("checkpoint")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")
