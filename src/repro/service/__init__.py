"""repro.service — the incremental decomposition service.

Two layers on top of the PR 4–7 runtime:

* :mod:`repro.service.delta` — the delta engine behind
  :meth:`repro.Session.apply_delta` / :meth:`repro.Session.watch`:
  edge-stream mutations repair the decomposition's dirty cascade
  in place (H-partition wave worklist + orientation patching) with a
  hard bit-identity contract against full recompute.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``repro serve`` daemon: a long-lived process holding one shared
  session behind a line-delimited-JSON socket, with a write-ahead
  delta journal and periodic checkpoints
  (:mod:`repro.service.checkpoint`) so it survives ``kill -9`` and
  resumes via ``repro serve --resume``.

Everything here is lazily imported: the core library never pays for
the service subsystem unless a session watches a task or a daemon
starts.
"""

from __future__ import annotations

import importlib

_LAZY = {
    "delta": ".delta",
    "checkpoint": ".checkpoint",
    "server": ".server",
    "client": ".client",
    "DeltaReport": ".delta",
    "DeltaInfo": ".delta",
    "WatchReport": ".delta",
    "SessionWaveOracle": ".delta",
    "apply_delta": ".delta",
    "watch_task": ".delta",
    "content_digest": ".delta",
    "chain_digest": ".delta",
    "repair_waves": ".delta",
    "patched_snapshot": ".delta",
    "JOURNAL_CHAIN_SEED": ".delta",
    "Checkpointer": ".checkpoint",
    "RestoredState": ".checkpoint",
    "restore_session": ".checkpoint",
    "ReproServer": ".server",
    "serve": ".server",
    "READY_PREFIX": ".server",
    "ServeClient": ".client",
    "ServeError": ".client",
}

__all__ = sorted(_LAZY)


def __getattr__(name):
    try:
        module = importlib.import_module(_LAZY[name], __name__)
    except KeyError:
        raise AttributeError(
            f"module 'repro.service' has no attribute {name!r}"
        ) from None
    if _LAZY[name].lstrip(".") == name:
        return module
    return getattr(module, name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
