"""Crash-safe persistence for the serve daemon.

A checkpoint directory holds *generations*.  Generation ``g`` is three
files plus the manifest that makes it live:

* ``state-<g>.npz`` — the graph content as four aligned arrays
  (``vertex_ids``, ``edge_id``, ``edge_u``, ``edge_v``) **in the
  graph's insertion order**, which is exactly what
  :meth:`CSRGraph.from_multigraph` consumes — so a restored graph
  reproduces the original's snapshot byte for byte;
* ``state-<g>.json`` — the scalar state: id counters
  (``next_vertex`` / ``next_edge``, so replayed inserts are assigned
  the same edge ids the live run assigned), the delta journal position
  (``seq`` / ``chain``), the session config, and the watched tasks
  with their knobs;
* ``journal-<g>.jsonl`` — one line per :meth:`Session.apply_delta`
  batch applied *since* the snapshot, each carrying its position in
  the blake2b hash chain (:func:`repro.service.delta.chain_digest`).

``MANIFEST.json`` names the live generation and is swapped atomically
(``os.replace`` of a same-directory temp file), so a crash at any
instant leaves either the old or the new generation live — never a
torn one.  Journal lines are flushed and fsynced before the daemon
acknowledges a batch; after ``kill -9`` the tail may hold one torn
(partially written) line, which :func:`load` drops — that batch was
never acknowledged, so dropping it is the consistent outcome.

Restore = rebuild the graph arrays, replay the journal's mutations in
order (verifying the hash chain), and hand back enough state to
re-create the session and its watches.  Decompositions are **not**
persisted: every task's output is a pure function of the graph and its
config (the delta engine's bit-identity contract), so re-running the
watches on the restored graph reproduces the pre-crash results
exactly, and the checkpoint stays small.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import DecompositionConfig
from ..errors import GraphError
from ..graph.multigraph import MultiGraph
from .delta import JOURNAL_CHAIN_SEED, chain_digest, ensure_delta_state

__all__ = ["Checkpointer", "RestoredState", "restore_session"]

SCHEMA_VERSION = 1

#: generations kept on disk after a checkpoint (the live one plus its
#: predecessor, so a torn checkpoint never strands the daemon).
KEEP_GENERATIONS = 2


def _fsync_write(path: str, data: str) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync +
    ``os.replace``)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _fsync_dir(directory: str) -> None:
    """fsync a directory so renames inside it survive power loss
    (best-effort: not all platforms allow opening directories)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class RestoredState:
    """Everything :func:`load` recovered from a checkpoint directory."""

    graph: MultiGraph
    config: DecompositionConfig
    #: ``(task, config, kwargs)`` per watch, in watch order
    watches: List[Tuple[str, DecompositionConfig, Dict[str, Any]]]
    seq: int
    chain: str
    generation: int
    #: journal batches replayed on top of the snapshot
    replayed: int = 0
    server_meta: Dict[str, Any] = field(default_factory=dict)


class Checkpointer:
    """Owns one checkpoint directory: snapshot generations plus the
    live delta journal (see the module docstring for the layout)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.generation = 0
        self._journal_handle = None
        self.journaled = 0
        manifest = self._read_manifest()
        if manifest is not None:
            self.generation = int(manifest["generation"])

    # -- paths ---------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, "MANIFEST.json")

    def _state_npz(self, generation: int) -> str:
        return os.path.join(self.directory, f"state-{generation:06d}.npz")

    def _state_json(self, generation: int) -> str:
        return os.path.join(self.directory, f"state-{generation:06d}.json")

    def _journal_path(self, generation: int) -> str:
        return os.path.join(self.directory, f"journal-{generation:06d}.jsonl")

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    # -- write side ----------------------------------------------------

    def checkpoint(
        self, session, server_meta: Optional[Dict[str, Any]] = None
    ) -> int:
        """Write a new generation from ``session``'s current state and
        make it live.  Returns the new generation number."""
        state = ensure_delta_state(session)
        graph = session.graph
        generation = self.generation + 1

        vertex_ids = np.fromiter(
            graph._adj.keys(), dtype=np.int64, count=graph.n
        )
        edge_id = np.empty(graph.m, dtype=np.int64)
        edge_u = np.empty(graph.m, dtype=np.int64)
        edge_v = np.empty(graph.m, dtype=np.int64)
        for pos, (eid, (u, v)) in enumerate(graph._edges.items()):
            edge_id[pos] = eid
            edge_u[pos] = u
            edge_v[pos] = v

        npz_path = self._state_npz(generation)
        with open(npz_path, "wb") as handle:
            np.savez(
                handle,
                vertex_ids=vertex_ids,
                edge_id=edge_id,
                edge_u=edge_u,
                edge_v=edge_v,
            )
            handle.flush()
            os.fsync(handle.fileno())

        meta = {
            "schema": SCHEMA_VERSION,
            "generation": generation,
            "next_vertex": graph._next_vertex,
            "next_edge": graph._next_edge,
            "seq": state.seq,
            "chain": state.chain,
            "config": session.config.to_json(),
            "watches": [
                {
                    "task": ws.task,
                    "config": ws.config.to_json(),
                    "kwargs": dict(ws.kwargs),
                }
                for ws in session._watches.values()
            ],
            "content_digest": session.content_digest(),
            "server": dict(server_meta or {}),
        }
        _fsync_write(self._state_json(generation), json.dumps(meta, indent=2))

        # A fresh (empty) journal accompanies every generation; create
        # it before the manifest swap so the live generation is always
        # complete on disk.
        self._close_journal()
        self._journal_handle = open(
            self._journal_path(generation), "a", encoding="utf-8"
        )
        _fsync_write(
            self._manifest_path(),
            json.dumps({"schema": SCHEMA_VERSION, "generation": generation}),
        )
        _fsync_dir(self.directory)

        self.generation = generation
        self.journaled = 0
        self._prune()
        return generation

    def journal(self, payload: Dict[str, Any], chain: str) -> None:
        """Append one applied batch to the live journal and fsync it.

        ``payload`` is the batch in the delta engine's chain format
        (``{"seq", "inserts", "deletes"}``); ``chain`` is the chain
        value the engine computed for it, stored alongside so restore
        can verify link-by-link.  Called after the batch applied but
        **before** the daemon acknowledges it — an acked batch is
        always on disk.
        """
        if self._journal_handle is None:
            self._journal_handle = open(
                self._journal_path(self.generation), "a", encoding="utf-8"
            )
        record = dict(payload)
        record["chain"] = chain
        self._journal_handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._journal_handle.flush()
        os.fsync(self._journal_handle.fileno())
        self.journaled += 1

    def close(self) -> None:
        self._close_journal()

    def _close_journal(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    def _prune(self) -> None:
        """Drop generations older than the newest KEEP_GENERATIONS."""
        cutoff = self.generation - KEEP_GENERATIONS
        for name in os.listdir(self.directory):
            for prefix in ("state-", "journal-"):
                if not name.startswith(prefix):
                    continue
                stem = name[len(prefix):].split(".", 1)[0]
                try:
                    generation = int(stem)
                except ValueError:
                    continue
                if generation <= cutoff:
                    try:
                        os.remove(os.path.join(self.directory, name))
                    except OSError:
                        pass


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def _rebuild_graph(
    arrays, next_vertex: int, next_edge: int
) -> MultiGraph:
    """Reconstruct the MultiGraph exactly: same vertex and edge
    insertion order (so CSR snapshots match byte for byte), same id
    counters (so replayed/future inserts get the same ids)."""
    graph = MultiGraph()
    for vertex in arrays["vertex_ids"].tolist():
        graph._adj[vertex] = {}
    for eid, u, v in zip(
        arrays["edge_id"].tolist(),
        arrays["edge_u"].tolist(),
        arrays["edge_v"].tolist(),
    ):
        graph._edges[eid] = (u, v)
        graph._adj[u].setdefault(v, set()).add(eid)
        graph._adj[v].setdefault(u, set()).add(eid)
    graph._next_vertex = int(next_vertex)
    graph._next_edge = int(next_edge)
    return graph


def load(directory: str) -> Optional[RestoredState]:
    """Load the live generation from ``directory`` and replay its
    journal; ``None`` when no checkpoint exists yet.

    Every journal line's hash chain is verified against
    :func:`~repro.service.delta.chain_digest`; a torn final line
    (a ``kill -9`` mid-write) is dropped, any other corruption raises
    :class:`~repro.errors.GraphError`.
    """
    checkpointer = Checkpointer.__new__(Checkpointer)
    checkpointer.directory = directory
    manifest_path = os.path.join(directory, "MANIFEST.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        return None
    generation = int(manifest["generation"])

    json_path = os.path.join(directory, f"state-{generation:06d}.json")
    npz_path = os.path.join(directory, f"state-{generation:06d}.npz")
    with open(json_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("schema") != SCHEMA_VERSION:
        raise GraphError(
            f"unsupported checkpoint schema {meta.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    with np.load(npz_path) as arrays:
        graph = _rebuild_graph(
            arrays, meta["next_vertex"], meta["next_edge"]
        )

    seq = int(meta["seq"])
    chain = str(meta["chain"])
    replayed = 0
    journal_path = os.path.join(directory, f"journal-{generation:06d}.jsonl")
    lines: List[str] = []
    try:
        with open(journal_path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except FileNotFoundError:
        raw = ""
    if raw:
        complete, sep, tail = raw.rpartition("\n")
        lines = complete.split("\n") if complete else []
        if not sep:
            lines = []  # single torn line, no newline ever hit disk
        # ``tail`` (text after the final newline) is a torn line from a
        # crash mid-write: the batch was never acknowledged, drop it.
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if lineno == len(lines):
                break  # torn final line (crash between write and fsync)
            raise GraphError(
                f"corrupt journal line {lineno} in {journal_path}"
            ) from None
        stored_chain = record.pop("chain", None)
        expected = chain_digest(chain, record)
        if stored_chain != expected:
            raise GraphError(
                f"journal chain mismatch at line {lineno} in "
                f"{journal_path}: batch seq {record.get('seq')} does not "
                f"extend the checkpoint's chain"
            )
        if int(record["seq"]) != seq + 1:
            raise GraphError(
                f"journal sequence gap at line {lineno} in {journal_path}: "
                f"expected seq {seq + 1}, found {record.get('seq')}"
            )
        for eid in record.get("deletes", ()):
            graph.remove_edge(int(eid))
        for u, v in record.get("inserts", ()):
            graph.add_edge(int(u), int(v))
        chain = expected
        seq += 1
        replayed += 1

    config = DecompositionConfig.from_json(meta["config"])
    watches = [
        (
            entry["task"],
            DecompositionConfig.from_json(entry["config"]),
            dict(entry.get("kwargs", {})),
        )
        for entry in meta.get("watches", [])
    ]
    return RestoredState(
        graph=graph,
        config=config,
        watches=watches,
        seq=seq,
        chain=chain,
        generation=generation,
        replayed=replayed,
        server_meta=dict(meta.get("server", {})),
    )


def restore_session(restored: RestoredState):
    """Build a live :class:`~repro.core.session.Session` from a
    :class:`RestoredState`: re-create the session, re-run every watch
    on the restored graph (bit-identical to the pre-crash results by
    the delta engine's purity contract), and seed the journal position
    so the chain continues where the crash left it."""
    from ..core.session import Session

    session = Session(restored.graph, restored.config)
    state = ensure_delta_state(session)
    for task, config, kwargs in restored.watches:
        session.watch(task, config=config, **kwargs)
    state.seq = restored.seq
    state.chain = restored.chain if restored.chain else JOURNAL_CHAIN_SEED
    state.fingerprint = session.fingerprint()
    return session


# Attached for discoverability: ``Checkpointer.load`` mirrors the
# module-level function (classmethod-style entry used by the daemon).
Checkpointer.load = staticmethod(load)  # type: ignore[attr-defined]
