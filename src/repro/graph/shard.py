"""Sharded multi-worker peeling over the CSR kernel.

The H-partition (Algorithm 1 / Theorem 2.1) is wave-parallel by
construction: every vertex whose remaining degree is at or below the
threshold peels *simultaneously*.  The serial kernel executes each wave
as one vectorized pass on a single core;
:class:`ShardedPeelingView` runs each wave through the shared
:class:`~repro.parallel.engine.WaveEngine` — the runtime this module
*used* to own before PR 5 lifted it into :mod:`repro.parallel` so the
BFS-shaped hot paths (ball carving, color-class scans, diameter
sweeps) could share it.

What remains here is the peeling-specific wave:

* **shard phase** — the engine fans the wave's work-list out along
  :class:`~repro.parallel.plan.ShardPlan` boundaries; per-shard
  kernels peel/gather against *frozen* ``alive`` / ``remaining``
  arrays (they read pre-wave state, never write shared degree state),
  and results concatenate in ascending dense-index order no matter
  which worker finished first.
* **reconcile phase** — one batched
  :func:`~repro.graph.csr.apply_degree_decrements` update (the
  ``np.bincount``-based helper shared with the serial wave) applies
  every decrement at once, and the vertices whose remaining degree
  crossed the threshold become the next wave's work-list.

Because workers only read frozen state and the reconcile is a single
deterministic batched update, the output is **bit-identical to the
serial ``csr`` backend for every worker count** — the equivalence
suite asserts dict == csr == sharded for workers in {1, 2, 4}.

The threshold-crossing bookkeeping is also why the backend is faster
on one core: a shard none of whose vertices were decremented below the
threshold cannot produce removals and contributes nothing to the
work-list, so steady-state waves touch only the active frontier
instead of rescanning all ``n`` vertices.  On wave-cascade workloads
(grid peels, long dependency chains) that turns ``O(waves * n)``
scanning into ``O(n + total frontier)``.

Workers are threads, pools are process-shared, and the fan-out gates
read only wave content — see :mod:`repro.parallel.engine` for the full
justification and the pool lifecycle (a single ``REPRO_SHARD_WORKERS``
read, explicit ``shutdown()``, atexit teardown).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..parallel.engine import engine_for, resolve_workers
from ..parallel.plan import ShardPlan, plan_of
from ..parallel.shm import SharedKernel, shared_state
from .csr import (
    CSRGraph,
    PeelingView,
    SHARDED_AUTO_CUTOFF,
    _concat_ranges,
    apply_degree_decrements,
)

__all__ = [
    "ShardPlan",
    "ShardedPeelingView",
    "SHARDED_AUTO_CUTOFF",
    "plan_of",
    "resolve_workers",
]


def _mp_peel_scan(arrays, part, threshold):
    """Shared-kernel twin of the closure scan in ``_scan_shards``:
    live vertices at or below the threshold within one shard range."""
    lo, hi = part
    local = np.flatnonzero(
        arrays["alive"][lo:hi] & (arrays["remaining"][lo:hi] <= threshold)
    )
    if local.size and lo:
        local += lo
    return local


def _mp_peel_gather(arrays, part):
    """Shared-kernel twin of the closure gather in
    ``_gather_cut_neighbors``: live neighbors (with multiplicity)
    across one work-group's half-edges."""
    offsets = arrays["offsets"]
    half = _concat_ranges(offsets[part], offsets[part + 1])
    nbrs = arrays["neighbors"][half]
    alive = arrays["alive"]
    return nbrs[alive[nbrs]]


class ShardedPeelingView(PeelingView):
    """A :class:`PeelingView` whose ``peel_leq`` waves run on the
    shared :class:`~repro.parallel.engine.WaveEngine`.

    State layout is identical to the serial view (the ``alive`` /
    ``remaining`` arrays *are* the superclass's), plus the wave
    bookkeeping: ``_cand`` holds the exact removal set of the next
    wave at the current threshold — maintained by the reconcile step,
    which knows precisely which vertices crossed the threshold.

    Invariant (the reason sharded == serial, proved wave by wave):
    after any ``peel_leq(t)`` wave, a live vertex has remaining degree
    <= t iff it was decremented below t by that wave's reconcile —
    otherwise it would have been removed by the wave itself.  So the
    reconcile's threshold-crossing set *is* the serial wave's
    ``flatnonzero(alive & (remaining <= t))``, shard-sliced.

    ``pop_min`` (degeneracy delete-min) and threshold changes fall
    back to the superclass machinery / a full shard scan; the view
    stays correct under arbitrary interleaving, like the serial one.
    """

    __slots__ = (
        "engine",
        "_cand",
        "_cand_threshold",
        "_mp_scan_kernel",
        "_mp_gather_kernel",
    )

    def __init__(
        self,
        snapshot: CSRGraph,
        plan: Optional[ShardPlan] = None,
        workers: int = 0,
        mp: bool = False,
    ) -> None:
        super().__init__(snapshot)
        # engine_for validates the plan against the snapshot (torn
        # plans — built from a different snapshot — are rejected).
        self.engine = engine_for(snapshot, workers, plan, mp=mp)
        self._cand: Optional[np.ndarray] = None
        self._cand_threshold: Optional[int] = None
        self._mp_scan_kernel: Optional[SharedKernel] = None
        self._mp_gather_kernel: Optional[SharedKernel] = None
        if mp:
            # Per-run state moves into shared-memory segments so worker
            # processes read the master's single-writer updates
            # zero-copy; the master keeps writing these views in the
            # reconcile, exactly like the thread backend writes its
            # plain arrays.  Segments are reclaimed by
            # ``repro.parallel.engine.shutdown()`` / atexit.
            self._alive_arr = shared_state(self._alive_arr)
            self._remaining_arr = shared_state(self._remaining_arr)
            self._mp_scan_kernel = SharedKernel(
                _mp_peel_scan,
                {
                    "alive": self._alive_arr,
                    "remaining": self._remaining_arr,
                },
            )
            self._mp_gather_kernel = SharedKernel(
                _mp_peel_gather,
                {
                    "offsets": snapshot.vertex_offsets,
                    "neighbors": snapshot.neighbor_ids,
                    "alive": self._alive_arr,
                },
            )

    @property
    def plan(self) -> ShardPlan:
        return self.engine.plan

    @property
    def workers(self) -> int:
        return self.engine.workers

    # -- wave phase 1: per-shard work ----------------------------------

    def _scan_shards(self, threshold: int) -> np.ndarray:
        """Full shard-wise scan: the first wave (and any wave after a
        threshold change or a scalar-mode interlude), where no
        reconcile has prepared a work-list yet."""
        if self._mp_scan_kernel is not None:
            return self.engine.scan_shards(
                self._mp_scan_kernel.with_args(int(threshold))
            )
        alive = self._alive_arr
        remaining = self._remaining_arr

        def scan(lo: int, hi: int) -> np.ndarray:
            local = np.flatnonzero(
                alive[lo:hi] & (remaining[lo:hi] <= threshold)
            )
            if local.size and lo:
                local += lo
            return local

        return self.engine.scan_shards(scan)

    def _gather_cut_neighbors(self, removed: np.ndarray) -> np.ndarray:
        """Live neighbors (with multiplicity) across the removed
        vertices' half-edges — the decrements this wave must apply.

        ``alive`` is frozen during the gather (removals were flagged
        before the call), so workers read identical state no matter
        the interleaving; the engine splits the work along shard
        boundaries and concatenates group results in plan order,
        reproducing the serial gather exactly.
        """
        offsets = self.snapshot.vertex_offsets
        total_half = int(
            (offsets[removed + 1] - offsets[removed]).sum()
        ) if removed.size else 0
        if self._mp_gather_kernel is not None:
            return self.engine.gather(
                self._mp_gather_kernel, removed, total_half
            )
        neighbor_ids = self.snapshot.neighbor_ids
        alive = self._alive_arr

        def gather(part: np.ndarray) -> np.ndarray:
            half = _concat_ranges(offsets[part], offsets[part + 1])
            nbrs = neighbor_ids[half]
            return nbrs[alive[nbrs]]

        return self.engine.gather(gather, removed, total_half)

    # -- the wave ------------------------------------------------------

    def peel_leq(self, threshold: int) -> np.ndarray:
        """One engine wave; see :meth:`PeelingView.peel_leq`.

        Returns the removed dense indices (ascending), bit-identical
        to the serial view's wave for any plan and worker count.
        """
        if self._alive_arr is None:
            # Scalar mode (after pop_min): the frozen-array wave
            # machinery no longer applies; delegate and invalidate.
            self._cand = None
            self._cand_threshold = None
            return self._peel_leq_scalar(threshold)

        if self._cand is not None and self._cand_threshold == threshold:
            removed = self._cand
        else:
            removed = self._scan_shards(threshold)
        self._cand = None
        self._cand_threshold = None
        if removed.size == 0:
            return removed

        alive = self._alive_arr
        remaining = self._remaining_arr
        alive[removed] = False
        self.alive_count -= int(removed.size)

        neighbors = self._gather_cut_neighbors(removed)

        # Reconcile: one batched bincount-based update, shared with the
        # serial wave, then keep exactly the vertices that crossed the
        # threshold as the next wave's work-list.
        touched = apply_degree_decrements(
            remaining, neighbors, self.snapshot.num_vertices,
            want_touched=True,
        )
        self._cand = touched[remaining[touched] <= threshold]
        self._cand_threshold = threshold
        return removed

    def pop_min(self):
        """Delete-min delegates to the serial scalar machinery; any
        prepared wave work-list is invalidated by the removal."""
        self._cand = None
        self._cand_threshold = None
        return super().pop_min()
