"""Sharded multi-worker peeling over the CSR kernel.

The H-partition (Algorithm 1 / Theorem 2.1) is wave-parallel by
construction: every vertex whose remaining degree is at or below the
threshold peels *simultaneously*.  The serial kernel executes each wave
as one vectorized pass on a single core; this module splits the wave
across **shards** — contiguous slices of the CSR offset array — so
multiple workers can process one wave concurrently, and layers the
frontier bookkeeping that makes waves cheap even on one core.

Wave / reconcile contract
-------------------------

Each wave has two phases, mirroring the cluster-local round structure
of the paper's algorithms:

1. **Shard phase** — workers peel their shards against *frozen*
   ``alive`` / ``remaining`` arrays: they read the pre-wave state,
   compute their shard's removals and gather the half-edges those
   removals cut, but never write shared degree state.  Work is split
   along :class:`ShardPlan` boundaries, so the concatenated per-shard
   results are in ascending dense-index order no matter which worker
   finished first.
2. **Reconcile phase** — one batched
   :func:`~repro.graph.csr.apply_degree_decrements` update (the
   ``np.bincount``-based helper shared with the serial wave) applies
   every boundary decrement at once, and the vertices whose remaining
   degree crossed the threshold become the next wave's per-shard
   work-list.

Because workers only read frozen state and the reconcile is a single
deterministic batched update, the output is **bit-identical to the
serial ``csr`` backend for every worker count** — the equivalence
suite asserts dict == csr == sharded for workers in {1, 2, 4}.

The threshold-crossing bookkeeping is also why the backend is faster
on one core: a shard none of whose vertices were decremented below the
threshold cannot produce removals and contributes nothing to the
work-list, so steady-state waves touch only the active frontier
instead of rescanning all ``n`` vertices.  On wave-cascade workloads
(grid peels, long dependency chains) that turns ``O(waves * n)``
scanning into ``O(n + total frontier)``.

Threads, not processes
----------------------

Workers are **threads** (a shared :class:`ThreadPoolExecutor`), not
processes.  The shard phase is numpy slice/gather kernels, which
release the GIL, so threads overlap on multi-core machines while
sharing the snapshot arrays zero-copy — no pickling, no shared-memory
segment lifecycle, no fork-safety constraints on user code.  A process
pool would buy nothing here: the reconcile step is one batched numpy
call either way, and the per-wave arrays workers exchange are exactly
the pickling cost a process pool would add.  Fan-out is skipped for
waves below :data:`FAN_OUT_MIN_HALF_EDGES` (dispatch latency would
exceed the work); the decision depends only on wave content, never on
timing, so it cannot perturb results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from ..errors import GraphError
from .csr import (
    CSRGraph,
    PeelingView,
    SHARDED_AUTO_CUTOFF,
    _concat_ranges,
    apply_degree_decrements,
)

__all__ = [
    "ShardPlan",
    "ShardedPeelingView",
    "SHARDED_AUTO_CUTOFF",
    "plan_of",
    "resolve_workers",
]

#: target vertices per shard when the plan does not say otherwise
SHARD_TARGET_VERTICES = 8192
#: target half-edges per shard (denser graphs get more shards)
SHARD_TARGET_HALF_EDGES = 65536
#: never split a graph into more shards than this
MAX_SHARDS = 64

#: waves whose removals cut fewer half-edges than this run inline:
#: thread dispatch costs ~50us, the work would take less.  The gate
#: reads only the wave's content (a deterministic function of the
#: graph and threshold), so fan-out can never change results.
FAN_OUT_MIN_HALF_EDGES = 32768

#: full shard scans over fewer vertices than this run inline for the
#: same reason (scan work is proportional to the vertex count).
FAN_OUT_MIN_SCAN_VERTICES = 32768

#: default worker count (workers=0): the machine's cores, capped —
#: peeling waves stop scaling long before large core counts.
MAX_AUTO_WORKERS = 4


def resolve_workers(workers: int = 0) -> int:
    """Concrete worker count for a ``workers`` knob (0 = auto)."""
    if workers < 0:
        raise GraphError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return max(1, min(MAX_AUTO_WORKERS, os.cpu_count() or 1))
    return workers


def default_num_shards(num_vertices: int, num_half_edges: int) -> int:
    """Shard count for a snapshot: scale with both vertex count and
    density, bounded by :data:`MAX_SHARDS` (and by ``n`` — a shard is
    never empty by construction unless the graph is smaller than the
    shard count)."""
    if num_vertices <= 1:
        return 1
    by_vertices = -(-num_vertices // SHARD_TARGET_VERTICES)
    by_half_edges = -(-num_half_edges // SHARD_TARGET_HALF_EDGES)
    return max(1, min(MAX_SHARDS, num_vertices, max(by_vertices, by_half_edges)))


class ShardPlan:
    """A partition of a snapshot's dense vertex range into contiguous
    slices of the CSR offset array, balanced by half-edge count.

    ``boundaries`` has length ``num_shards + 1`` with
    ``boundaries[0] == 0`` and ``boundaries[-1] == n``; shard ``s``
    owns vertex indices ``boundaries[s]:boundaries[s+1]``.  The plan
    depends only on the snapshot (never on the worker count), which is
    one half of the determinism story: the same graph always shards
    the same way, workers merely consume the shards.
    """

    __slots__ = ("boundaries", "num_shards")

    def __init__(self, boundaries: np.ndarray) -> None:
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise GraphError("shard plan needs at least one shard")
        if boundaries[0] != 0 or np.any(np.diff(boundaries) < 0):
            raise GraphError("shard boundaries must be nondecreasing from 0")
        self.boundaries = boundaries
        self.num_shards = int(boundaries.size - 1)

    @classmethod
    def from_snapshot(
        cls, snapshot: CSRGraph, num_shards: Optional[int] = None
    ) -> "ShardPlan":
        """Balance shards so each owns roughly equal half-edges.

        Vertex ``i``'s half-edges end at ``vertex_offsets[i+1]``;
        placing boundaries at evenly spaced half-edge targets via
        ``searchsorted`` keeps dense regions from piling onto one
        worker while every shard stays a contiguous index slice.
        """
        n = snapshot.num_vertices
        if num_shards is None:
            num_shards = default_num_shards(n, int(snapshot.neighbor_ids.size))
        if num_shards < 1:
            raise GraphError(f"num_shards must be >= 1, got {num_shards}")
        num_shards = min(num_shards, max(1, n))
        if n == 0:
            return cls(np.zeros(num_shards + 1, dtype=np.int64))
        offsets = snapshot.vertex_offsets
        total = int(offsets[-1])
        targets = (np.arange(1, num_shards, dtype=np.int64) * total) // num_shards
        inner = np.searchsorted(offsets[1:], targets, side="left") + 1
        boundaries = np.concatenate(([0], inner, [n]))
        # Degenerate distributions (one hub vertex holding most edges)
        # can collapse several targets onto one index; keep boundaries
        # monotone — empty shards are allowed and simply skipped.
        np.maximum.accumulate(boundaries, out=boundaries)
        np.minimum(boundaries, n, out=boundaries)
        return cls(boundaries)

    def shard_of(self, index: int) -> int:
        """The shard owning dense vertex index ``index``."""
        return int(
            np.searchsorted(self.boundaries, index, side="right") - 1
        )

    def split(self, indices: np.ndarray) -> List[np.ndarray]:
        """Split an ascending index array into per-shard slices (views)."""
        cuts = np.searchsorted(indices, self.boundaries[1:-1], side="left")
        return np.split(indices, cuts)

    def __repr__(self) -> str:
        return (
            f"ShardPlan(num_shards={self.num_shards}, "
            f"n={int(self.boundaries[-1])})"
        )


def plan_of(snapshot: CSRGraph, num_shards: Optional[int] = None) -> ShardPlan:
    """The snapshot's cached default :class:`ShardPlan`.

    Snapshots are immutable, so the default plan is computed once and
    cached on the instance (mirroring ``snapshot_of``'s caching on the
    source graph); explicit ``num_shards`` bypasses the cache.
    """
    if num_shards is not None:
        return ShardPlan.from_snapshot(snapshot, num_shards)
    cached = snapshot._shard_plan_cache
    if cached is None:
        cached = ShardPlan.from_snapshot(snapshot)
        snapshot._shard_plan_cache = cached
    return cached


# ----------------------------------------------------------------------
# Worker pool (threads; see module docstring for the justification)
# ----------------------------------------------------------------------

_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _pool_for(workers: int) -> ThreadPoolExecutor:
    """A shared thread pool per worker count.

    Pools are reused across waves and views — spawning threads per
    h-partition call would cost more than small waves themselves.
    Idle pools hold no GIL and nearly no memory.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        _POOLS[workers] = pool
    return pool


class ShardedPeelingView(PeelingView):
    """A :class:`PeelingView` whose ``peel_leq`` waves run shard-wise.

    State layout is identical to the serial view (the ``alive`` /
    ``remaining`` arrays *are* the superclass's), plus the wave
    bookkeeping: ``_cand`` holds the exact removal set of the next
    wave at the current threshold — maintained by the reconcile step,
    which knows precisely which vertices crossed the threshold.

    Invariant (the reason sharded == serial, proved wave by wave):
    after any ``peel_leq(t)`` wave, a live vertex has remaining degree
    <= t iff it was decremented below t by that wave's reconcile —
    otherwise it would have been removed by the wave itself.  So the
    reconcile's threshold-crossing set *is* the serial wave's
    ``flatnonzero(alive & (remaining <= t))``, shard-sliced.

    ``pop_min`` (degeneracy delete-min) and threshold changes fall
    back to the superclass machinery / a full shard scan; the view
    stays correct under arbitrary interleaving, like the serial one.
    """

    __slots__ = ("plan", "workers", "_cand", "_cand_threshold")

    def __init__(
        self,
        snapshot: CSRGraph,
        plan: Optional[ShardPlan] = None,
        workers: int = 0,
    ) -> None:
        super().__init__(snapshot)
        self.plan = plan if plan is not None else plan_of(snapshot)
        if int(self.plan.boundaries[-1]) != snapshot.num_vertices:
            raise GraphError(
                f"shard plan covers {int(self.plan.boundaries[-1])} "
                f"vertices, snapshot has {snapshot.num_vertices}"
            )
        self.workers = resolve_workers(workers)
        self._cand: Optional[np.ndarray] = None
        self._cand_threshold: Optional[int] = None

    # -- wave phase 1: per-shard work ----------------------------------

    def _scan_shards(self, threshold: int) -> np.ndarray:
        """Full shard-wise scan: the first wave (and any wave after a
        threshold change or a scalar-mode interlude), where no
        reconcile has prepared a work-list yet."""
        alive = self._alive_arr
        remaining = self._remaining_arr
        bounds = self.plan.boundaries

        def scan(shard: int) -> np.ndarray:
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            local = np.flatnonzero(
                alive[lo:hi] & (remaining[lo:hi] <= threshold)
            )
            if local.size and lo:
                local += lo
            return local

        shards = range(self.plan.num_shards)
        n = self.snapshot.num_vertices
        if self.workers > 1 and n >= FAN_OUT_MIN_SCAN_VERTICES:
            parts = list(_pool_for(self.workers).map(scan, shards))
        else:
            parts = [scan(s) for s in shards]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _shard_aligned_groups(self, removed: np.ndarray) -> List[np.ndarray]:
        """Split the wave's work-list into up to ``workers`` groups of
        whole shards (balanced by removal count, boundaries snapped to
        the plan's shard edges).  A shard with no threshold crossings
        contributes nothing, so inactive regions cost no work."""
        edges = np.concatenate((
            [0],
            np.searchsorted(removed, self.plan.boundaries[1:-1], side="left"),
            [removed.size],
        ))
        targets = (
            np.arange(1, self.workers, dtype=np.int64) * removed.size
        ) // self.workers
        picks = edges[np.searchsorted(edges, targets, side="left")]
        cuts = np.unique(np.concatenate(([0], picks, [removed.size])))
        return [removed[a:b] for a, b in zip(cuts[:-1], cuts[1:])]

    def _gather_cut_neighbors(self, removed: np.ndarray) -> np.ndarray:
        """Live neighbors (with multiplicity) across the removed
        vertices' half-edges — the decrements this wave must apply.

        ``alive`` is frozen during the gather (removals were flagged
        before the call), so workers read identical state no matter
        the interleaving.  Work splits along :class:`ShardPlan`
        boundaries (each worker group owns a run of whole shards) and
        group results concatenate in plan order, reproducing the
        serial gather exactly.
        """
        offsets = self.snapshot.vertex_offsets
        neighbor_ids = self.snapshot.neighbor_ids
        alive = self._alive_arr

        def gather(part: np.ndarray) -> np.ndarray:
            half = _concat_ranges(offsets[part], offsets[part + 1])
            nbrs = neighbor_ids[half]
            return nbrs[alive[nbrs]]

        total_half = int(
            (offsets[removed + 1] - offsets[removed]).sum()
        ) if removed.size else 0
        if (
            self.workers > 1
            and total_half >= FAN_OUT_MIN_HALF_EDGES
            and removed.size >= self.workers
        ):
            groups = self._shard_aligned_groups(removed)
            if len(groups) > 1:
                parts = list(_pool_for(self.workers).map(gather, groups))
                parts = [p for p in parts if p.size]
                if not parts:
                    return np.empty(0, dtype=np.int64)
                return (
                    parts[0] if len(parts) == 1 else np.concatenate(parts)
                )
        return gather(removed)

    # -- the wave ------------------------------------------------------

    def peel_leq(self, threshold: int) -> np.ndarray:
        """One sharded wave; see :meth:`PeelingView.peel_leq`.

        Returns the removed dense indices (ascending), bit-identical
        to the serial view's wave for any plan and worker count.
        """
        if self._alive_arr is None:
            # Scalar mode (after pop_min): the frozen-array wave
            # machinery no longer applies; delegate and invalidate.
            self._cand = None
            self._cand_threshold = None
            return self._peel_leq_scalar(threshold)

        if self._cand is not None and self._cand_threshold == threshold:
            removed = self._cand
        else:
            removed = self._scan_shards(threshold)
        self._cand = None
        self._cand_threshold = None
        if removed.size == 0:
            return removed

        alive = self._alive_arr
        remaining = self._remaining_arr
        alive[removed] = False
        self.alive_count -= int(removed.size)

        neighbors = self._gather_cut_neighbors(removed)

        # Reconcile: one batched bincount-based update, shared with the
        # serial wave, then keep exactly the vertices that crossed the
        # threshold as the next wave's work-list.
        touched = apply_degree_decrements(
            remaining, neighbors, self.snapshot.num_vertices,
            want_touched=True,
        )
        self._cand = touched[remaining[touched] <= threshold]
        self._cand_threshold = threshold
        return removed

    def pop_min(self):
        """Delete-min delegates to the serial scalar machinery; any
        prepared wave work-list is invalidated by the removal."""
        self._cand = None
        self._cand_threshold = None
        return super().pop_min()
