"""Workload generators for tests, examples and benchmarks.

Most benches need graphs whose arboricity is *known by construction*:

* :func:`union_of_random_forests` — union of ``k`` random spanning
  forests, so ``α ≤ k`` (and, at full density, typically exactly ``k``).
* :func:`line_multigraph` — the Proposition C.1 lower-bound instance:
  ``ℓ`` vertices on a line with ``α`` parallel edges between neighbors.
* :func:`complete_graph` — ``α(K_n) = ⌈n/2⌉``.
* standard families (grid, ER, random regular, preferential attachment,
  random bipartite) for realism.

All generators take an explicit seed and return :class:`MultiGraph`.
Palette helpers attach per-edge color lists for the list-coloring
variants (k-LFD / k-LSFD).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from ..rng import SeedLike, make_rng
from .multigraph import MultiGraph

Palette = Dict[int, List[int]]


def empty_graph(n: int) -> MultiGraph:
    """``n`` isolated vertices."""
    return MultiGraph.with_vertices(n)


def path_graph(n: int) -> MultiGraph:
    """Simple path on ``n`` vertices; arboricity 1."""
    return MultiGraph.from_edges(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> MultiGraph:
    """Simple cycle on ``n >= 3`` vertices; arboricity 2 (pseudo 1)."""
    if n < 3:
        raise GraphError("cycle needs at least 3 vertices")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    return MultiGraph.from_edges(n, pairs)


def star_graph(n: int) -> MultiGraph:
    """Star with center 0 and ``n - 1`` leaves; arboricity 1."""
    return MultiGraph.from_edges(n, ((0, i) for i in range(1, n)))


def complete_graph(n: int) -> MultiGraph:
    """``K_n``; arboricity ``⌈n/2⌉``."""
    return MultiGraph.from_edges(n, itertools.combinations(range(n), 2))


def grid_graph(rows: int, cols: int) -> MultiGraph:
    """2D grid; arboricity 2 for non-degenerate sizes."""
    graph = MultiGraph.with_vertices(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def random_spanning_forest_edges(
    n: int, rng, density: float = 1.0
) -> List[Tuple[int, int]]:
    """Edges of a uniform-ish random spanning forest of ``K_n``.

    Built by a random-order incremental union-find pass over a random
    vertex permutation (random attachment), then thinned to ``density``.
    """
    order = list(range(n))
    rng.shuffle(order)
    edges: List[Tuple[int, int]] = []
    for i in range(1, n):
        j = rng.randrange(i)
        edges.append((order[i], order[j]))
    if density < 1.0:
        edges = [e for e in edges if rng.random() < density]
    return edges


def union_of_random_forests(
    n: int,
    k: int,
    seed: SeedLike = None,
    density: float = 1.0,
    simple: bool = False,
) -> MultiGraph:
    """Union of ``k`` random spanning forests on ``n`` vertices.

    Arboricity is at most ``k`` by construction.  With ``density=1.0``
    the graph has ``k(n-1)`` edges so its Nash-Williams density is
    exactly ``k`` and hence ``α = k``.  With ``simple=True`` duplicate
    pairs are redirected (best effort), keeping the graph simple at a
    small cost in edge count for tiny ``n``.
    """
    rng = make_rng(seed)
    graph = MultiGraph.with_vertices(n)
    present: Set[Tuple[int, int]] = set()
    for _ in range(k):
        for u, v in random_spanning_forest_edges(n, rng, density):
            if simple:
                key = (min(u, v), max(u, v))
                if key in present:
                    # Retry a few times with a random pair to keep m high.
                    placed = False
                    for _attempt in range(8):
                        a = rng.randrange(n)
                        b = rng.randrange(n)
                        key2 = (min(a, b), max(a, b))
                        if a != b and key2 not in present:
                            present.add(key2)
                            graph.add_edge(a, b)
                            placed = True
                            break
                    if not placed:
                        continue
                else:
                    present.add(key)
                    graph.add_edge(u, v)
            else:
                graph.add_edge(u, v)
    return graph


def line_multigraph(length: int, multiplicity: int) -> MultiGraph:
    """The Proposition C.1 instance: a path of ``length`` vertices with
    ``multiplicity`` parallel edges between consecutive vertices.

    Arboricity equals ``multiplicity`` and any ``(1+ε)α``-FD of it has
    forest diameter ``Ω(1/ε)``.
    """
    if length < 2:
        raise GraphError("line multigraph needs at least 2 vertices")
    if multiplicity < 1:
        raise GraphError("multiplicity must be >= 1")
    graph = MultiGraph.with_vertices(length)
    for i in range(length - 1):
        for _ in range(multiplicity):
            graph.add_edge(i, i + 1)
    return graph


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> MultiGraph:
    """Simple G(n, p) random graph."""
    rng = make_rng(seed)
    graph = MultiGraph.with_vertices(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_regular_multigraph(n: int, d: int, seed: SeedLike = None) -> MultiGraph:
    """Configuration-model random ``d``-regular multigraph (self-loops
    re-drawn; parallel edges kept — this is a multigraph generator)."""
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph")
    rng = make_rng(seed)
    stubs = [v for v in range(n) for _ in range(d)]
    for _attempt in range(200):
        rng.shuffle(stubs)
        pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
        if all(u != v for u, v in pairs):
            return MultiGraph.from_edges(n, pairs)
    # Fall back: re-draw loop pairs individually.
    graph = MultiGraph.with_vertices(n)
    leftover: List[int] = []
    for u, v in pairs:
        if u != v:
            graph.add_edge(u, v)
        else:
            leftover.extend((u, v))
    for i in range(0, len(leftover) - 1, 2):
        u, v = leftover[i], leftover[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph


def preferential_attachment(n: int, out_degree: int, seed: SeedLike = None) -> MultiGraph:
    """Barabási–Albert-style simple graph: each new vertex attaches to
    ``out_degree`` existing vertices chosen by degree-proportional
    sampling.  Arboricity is at most ``out_degree`` by construction
    (each vertex contributes at most ``out_degree`` edges when added)."""
    if out_degree < 1:
        raise GraphError("out_degree must be >= 1")
    rng = make_rng(seed)
    graph = MultiGraph.with_vertices(n)
    targets: List[int] = []  # degree-weighted urn
    start = min(out_degree + 1, n)
    for v in range(1, start):
        u = rng.randrange(v)
        graph.add_edge(v, u)
        targets.extend((v, u))
    for v in range(start, n):
        chosen: Set[int] = set()
        while len(chosen) < out_degree:
            pick = rng.choice(targets) if targets else rng.randrange(v)
            if pick != v:
                chosen.add(pick)
        # repro: allow(det-set-order) — int-only target set: iteration order
        # is hash-seed-independent and fixed by the rng draw sequence; the
        # resulting edge-id order is frozen into every preferential-graph
        # golden and corpus seed (sorting would silently regen them all).
        for u in chosen:
            graph.add_edge(v, u)
            targets.extend((v, u))
    return graph


def random_bipartite(
    n_left: int, n_right: int, p: float, seed: SeedLike = None
) -> MultiGraph:
    """Simple random bipartite graph; left vertices are 0..n_left-1."""
    rng = make_rng(seed)
    graph = MultiGraph.with_vertices(n_left + n_right)
    for u in range(n_left):
        for v in range(n_left, n_left + n_right):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def add_parallel_copies(graph: MultiGraph, copies: int) -> MultiGraph:
    """Multigraph with every edge duplicated ``copies`` times (α scales)."""
    if copies < 1:
        raise GraphError("copies must be >= 1")
    out = MultiGraph.with_vertices(0)
    for vertex in graph.vertices():
        out.add_vertex(vertex)
    for _eid, u, v in graph.edges():
        for _ in range(copies):
            out.add_edge(u, v)
    return out


def wheel_graph(n: int) -> MultiGraph:
    """Wheel: hub 0 joined to an (n-1)-cycle; arboricity 2 for n >= 4."""
    if n < 4:
        raise GraphError("wheel needs at least 4 vertices")
    graph = MultiGraph.with_vertices(n)
    rim = list(range(1, n))
    for i, v in enumerate(rim):
        graph.add_edge(0, v)
        graph.add_edge(v, rim[(i + 1) % len(rim)])
    return graph


def caterpillar(spine: int, legs_per_vertex: int) -> MultiGraph:
    """Caterpillar tree: a spine path with ``legs_per_vertex`` leaves
    hanging off each spine vertex; arboricity 1, large max degree."""
    if spine < 1:
        raise GraphError("caterpillar needs at least 1 spine vertex")
    graph = MultiGraph.with_vertices(spine)
    for i in range(spine - 1):
        graph.add_edge(i, i + 1)
    for i in range(spine):
        for _ in range(legs_per_vertex):
            leaf = graph.add_vertex()
            graph.add_edge(i, leaf)
    return graph


# ----------------------------------------------------------------------
# Palettes for list-coloring variants
# ----------------------------------------------------------------------


def uniform_palette(graph: MultiGraph, colors: Sequence[int]) -> Palette:
    """Every edge gets the same palette (ordinary coloring as a list problem)."""
    colors = list(colors)
    return {eid: list(colors) for eid in graph.edge_ids()}


def random_palettes(
    graph: MultiGraph,
    palette_size: int,
    color_space: int,
    seed: SeedLike = None,
) -> Palette:
    """Each edge independently gets a uniform ``palette_size``-subset of
    ``{0, .., color_space-1}``."""
    if palette_size > color_space:
        raise GraphError("palette size exceeds color space")
    rng = make_rng(seed)
    space = list(range(color_space))
    return {
        eid: sorted(rng.sample(space, palette_size)) for eid in graph.edge_ids()
    }


def skewed_palettes(
    graph: MultiGraph,
    palette_size: int,
    color_space: int,
    hot_fraction: float = 0.5,
    seed: SeedLike = None,
) -> Palette:
    """Adversarially overlapping palettes: a ``hot_fraction`` of each
    palette comes from a small 'hot' prefix of the color space, creating
    contention; the rest is uniform.  Stresses list-coloring paths."""
    rng = make_rng(seed)
    hot_count = max(1, int(palette_size * hot_fraction))
    hot_pool = list(range(min(color_space, 2 * hot_count)))
    cold_pool = list(range(color_space))
    palettes: Palette = {}
    for eid in graph.edge_ids():
        chosen: Set[int] = set(rng.sample(hot_pool, min(hot_count, len(hot_pool))))
        while len(chosen) < palette_size:
            chosen.add(rng.choice(cold_pool))
        palettes[eid] = sorted(chosen)
    return palettes
