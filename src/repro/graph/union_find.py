"""Disjoint-set (union-find) structures.

Two variants are provided:

* :class:`UnionFind` — classic union-by-rank with path compression,
  amortized near-constant operations.  Used wherever connectivity is
  grown monotonically (forest validity checks, component counting).
* :class:`RollbackUnionFind` — union-by-rank *without* path compression
  so that unions can be undone in LIFO order.  Used by the augmenting
  search, which tentatively recolors edges and must restore per-color
  connectivity after exploring a branch.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple


class UnionFind:
    """Union-find over arbitrary hashable items with lazy insertion."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Insert ``item`` as a singleton if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._components += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._components

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were disjoint."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """Return the current partition as a list of member lists."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())


class RollbackUnionFind:
    """Union-find supporting LIFO rollback of unions.

    Path compression is disabled (it would make rollback incorrect), so
    ``find`` is O(log n) by union-by-rank alone; this is the standard
    trade-off for a persistent/undoable DSU.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._history: List[Tuple[Hashable, Hashable, bool]] = []
        self._components = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._components += 1

    @property
    def components(self) -> int:
        return self._components

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        while self._parent[item] != item:
            item = self._parent[item]
        return item

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge sets; records the operation so it can be undone."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            self._history.append((ra, rb, False))
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        rank_bumped = self._rank[ra] == self._rank[rb]
        self._parent[rb] = ra
        if rank_bumped:
            self._rank[ra] += 1
        self._components -= 1
        self._history.append((ra, rb, rank_bumped))
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def checkpoint(self) -> int:
        """Return a marker for the current history position."""
        return len(self._history)

    def rollback(self, checkpoint: int) -> None:
        """Undo all unions performed after ``checkpoint``."""
        if checkpoint > len(self._history):
            raise ValueError("checkpoint is ahead of history")
        while len(self._history) > checkpoint:
            ra, rb, rank_bumped = self._history.pop()
            if ra == rb:
                continue  # recorded no-op union: sets were already merged
            self._parent[rb] = rb
            if rank_bumped:
                self._rank[ra] -= 1
            self._components += 1
