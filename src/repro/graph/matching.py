"""Hopcroft-Karp maximum bipartite matching.

Section 5 of the paper builds, for every vertex ``v``, a bipartite graph
``H_v`` between colors and out-neighbors and needs a maximum (or
near-maximum) matching in it.  This module provides that from scratch.

The interface is adjacency-based: ``left_adjacency[i]`` lists the right
nodes adjacent to left node ``i``.  Right nodes are arbitrary hashables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

INFINITY = float("inf")


def hopcroft_karp(
    left_adjacency: Sequence[Sequence[Hashable]],
) -> Tuple[Dict[int, Hashable], Dict[Hashable, int]]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    left_adjacency:
        ``left_adjacency[i]`` is the iterable of right-node labels
        adjacent to left node ``i`` (left nodes are ``0..len-1``).

    Returns
    -------
    (match_left, match_right):
        ``match_left[i] = r`` and ``match_right[r] = i`` for every
        matched pair; unmatched nodes are absent.
    """
    n_left = len(left_adjacency)
    match_left: Dict[int, Hashable] = {}
    match_right: Dict[Hashable, int] = {}
    dist: Dict[int, float] = {}

    def bfs() -> bool:
        queue: deque = deque()
        for i in range(n_left):
            if i not in match_left:
                dist[i] = 0
                queue.append(i)
            else:
                dist[i] = INFINITY
        found_free = False
        while queue:
            i = queue.popleft()
            for r in left_adjacency[i]:
                j = match_right.get(r)
                if j is None:
                    found_free = True
                elif dist[j] == INFINITY:
                    dist[j] = dist[i] + 1
                    queue.append(j)
        return found_free

    def dfs(i: int) -> bool:
        for r in left_adjacency[i]:
            j = match_right.get(r)
            if j is None or (dist[j] == dist[i] + 1 and dfs(j)):
                match_left[i] = r
                match_right[r] = i
                return True
        dist[i] = INFINITY
        return False

    while bfs():
        for i in range(n_left):
            if i not in match_left:
                dfs(i)
    return match_left, match_right


def maximum_matching_size(left_adjacency: Sequence[Sequence[Hashable]]) -> int:
    """Size of a maximum matching (convenience wrapper)."""
    match_left, _ = hopcroft_karp(left_adjacency)
    return len(match_left)


def greedy_matching(
    left_adjacency: Sequence[Sequence[Hashable]],
) -> Dict[int, Hashable]:
    """Simple greedy matching — a fast baseline used in tests as a lower
    bound oracle (greedy achieves at least half the maximum)."""
    taken: set = set()
    match_left: Dict[int, Hashable] = {}
    for i, options in enumerate(left_adjacency):
        for r in options:
            if r not in taken:
                taken.add(r)
                match_left[i] = r
                break
    return match_left
