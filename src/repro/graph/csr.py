"""Flat-array (CSR) graph kernel for the decomposition hot paths.

Every algorithm in the library is *defined* on :class:`MultiGraph`'s
dict-of-dicts adjacency, but the procedures that dominate runtime —
H-partition threshold peeling, degeneracy delete-min, orientation
sweeps, CUT's region scans, the augmenting search's endpoint lookups —
only ever need degree queries and neighborhood iteration.  Those map
onto flat index arrays, which is how this kernel makes them run at
array speed while the public API keeps accepting ``MultiGraph``.

Snapshot / peeling-view contract
--------------------------------

:class:`CSRGraph` is an **immutable snapshot** of a ``MultiGraph`` at
build time:

* Vertices are renumbered to dense indices ``0..n-1`` in insertion
  order; ``vertex_ids[i]`` recovers the original id and
  :meth:`index_of` inverts it (both are the identity for the common
  case of graphs built via ``with_vertices``).
* ``vertex_offsets`` (length ``n+1``), ``neighbor_ids`` and
  ``edge_ids`` (length ``2m``) form the CSR adjacency: the half-edges
  of vertex index ``i`` occupy ``vertex_offsets[i]:vertex_offsets[i+1]``,
  where ``neighbor_ids`` holds the neighbor *index* and ``edge_ids``
  the **original edge id** — stable ids survive the conversion, so
  colorings computed on the snapshot transfer back without
  translation.  Parallel edges appear once per copy.
* ``edge_u``/``edge_v`` (endpoint indices) and ``edge_id`` (original
  ids) list edges by position in ``MultiGraph`` insertion order.
* Degree lookup is O(1): ``vertex_offsets[i+1] - vertex_offsets[i]``.

The snapshot is only valid while the source graph is unmutated; every
algorithm in this library treats its input graph as read-only, so one
snapshot per run (cached e.g. on
:class:`~repro.core.partial_coloring.PartialListForestDecomposition`)
is safe.

:class:`PeelingView` layers *mutable* degree bookkeeping over a frozen
snapshot.  It supports the two deletion disciplines the decomposition
algorithms need:

* :meth:`PeelingView.peel_leq` — one H-partition wave: remove every
  live vertex of remaining degree ≤ t simultaneously (vectorized), and
* :meth:`PeelingView.pop_min` — degeneracy peeling: remove the live
  vertex minimizing ``(remaining degree, vertex id)``, via a lazy heap.

Both maintain ``remaining degree`` counting parallel edges, exactly
like the dict-backed loops they replace; results are byte-identical
(see ``tests/test_kernel_equivalence.py``).  The view never touches the
snapshot arrays, so many views can share one snapshot.

This kernel is the substrate for the sharded multi-worker peeling
backend (:mod:`repro.graph.shard`): a shard is a contiguous slice of
the offset array, per-wave degree updates are batched through
:func:`apply_degree_decrements`, and
:class:`~repro.graph.shard.ShardedPeelingView` subclasses
:class:`PeelingView` with wave/reconcile bookkeeping that is
bit-identical to the serial view regardless of worker count.
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Mapping
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphError
from .multigraph import MultiGraph


def _concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], ends[i])`` for all i, vectorized."""
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    before = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.repeat(starts - before, lengths) + np.arange(total, dtype=np.int64)


def _half_edge_csr(
    n: int, sub_u: np.ndarray, sub_v: np.ndarray, sub_eid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble CSR adjacency ``(offsets, neighbors, edge ids)`` over
    ``n`` dense vertex indices from an edge list given as endpoint-index
    arrays.  The stable counting sort keeps, within each vertex, u-side
    half-edges (by edge position) before v-side ones."""
    half_src = np.concatenate((sub_u, sub_v))
    half_dst = np.concatenate((sub_v, sub_u))
    half_eid = np.concatenate((sub_eid, sub_eid))
    # Stable order is unique, so sorting a uint32 view of the keys
    # yields the identical permutation while hitting numpy's radix
    # path (several times faster than the int64 comparison sort).
    # Dense vertex indices are nonnegative and far below 2**32.
    sort_key = (
        half_src.astype(np.uint32) if n < 2**32 - 1 else half_src
    )
    order = np.argsort(sort_key, kind="stable")
    counts = (
        np.bincount(half_src, minlength=n)
        if half_src.size
        else np.zeros(n, np.int64)
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, half_dst[order], half_eid[order]


# MultiGraphs below this vertex count stay on the dict reference path
# under backend="auto": converting to arrays costs more than it saves.
AUTO_CSR_CUTOFF = 256

# Below this vertex count the sharded peeling backend falls back to the
# serial csr kernel: per-wave coordination overhead only pays for
# itself at scale (see repro.graph.shard).
SHARDED_AUTO_CUTOFF = 50_000

# Below this vertex count the parallel (engine-backed) BFS paths fall
# back to the serial csr kernel for the same reason; small frontiers
# and small color classes stay serial (see repro.parallel).
PARALLEL_BFS_AUTO_CUTOFF = 50_000


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in (
        "", "0", "false", "no", "off"
    )


def force_parallel_traversal() -> bool:
    """True when ``REPRO_FORCE_PARALLEL=1``: every csr-resolved
    traversal / BFS callsite reroutes through the engine-backed
    parallel path (outputs are bit-identical; the CI forced-backend
    leg runs the whole suite this way)."""
    return _env_flag("REPRO_FORCE_PARALLEL")


def force_sharded_peeling() -> bool:
    """True when ``REPRO_FORCE_SHARDED=1`` *or* the stronger
    ``REPRO_FORCE_PARALLEL=1``: every csr peel reroutes through the
    sharded wave view."""
    return _env_flag("REPRO_FORCE_SHARDED") or _env_flag("REPRO_FORCE_PARALLEL")


def force_mp() -> bool:
    """True when ``REPRO_FORCE_MP=1``: every wave-engine-resolved
    callsite (peels *and* traversals) reroutes through the
    process-backed ``"mp"`` substrate regardless of size — the mp CI
    leg runs the whole fast suite this way.  Outputs are bit-identical
    to every other backend; the process pool is sized by
    ``REPRO_MP_WORKERS``."""
    return _env_flag("REPRO_FORCE_MP")


def resolve_backend(graph, backend: str, error_cls=GraphError, peeling: bool = False) -> str:
    """Shared backend dispatch for the traversal / decomposition layers.

    ``auto`` routes :class:`CSRGraph` inputs (and large ``MultiGraph``
    inputs) to the kernel and keeps small dict graphs on the reference
    path.  The ``sharded`` / ``parallel`` / ``mp`` names select the
    wave-engine substrates, each auto-gated by size (the multi-worker
    wave machinery only pays for itself at scale; results are identical
    either way):

    * peeling callsites (``peeling=True``) get ``"sharded"`` (or
      ``"mp"``) at ``n >= SHARDED_AUTO_CUTOFF`` and ``"csr"`` below;
    * traversal / network-decomposition / color-class callsites get
      ``"parallel"`` (or ``"mp"``) — engine-backed BFS waves — at
      ``n >= PARALLEL_BFS_AUTO_CUTOFF`` and ``"csr"`` below — never
      the dict reference path.

    ``mp`` is the same wave contract fanned over worker *processes*
    with shared-memory snapshots (:class:`repro.parallel.MPWaveEngine`).

    ``REPRO_FORCE_PARALLEL=1`` reroutes every csr-resolved
    non-peeling callsite through ``"parallel"`` regardless of size
    (the forced-backend CI leg); ``REPRO_FORCE_MP=1`` does the same
    through ``"mp"``, peels included, and supersedes the parallel
    force.  Unknown names raise ``error_cls`` so each layer keeps its
    own error taxonomy.
    """
    if backend in ("sharded", "parallel", "mp"):
        wants_mp = backend == "mp" or force_mp()
        if peeling:
            if graph.n >= SHARDED_AUTO_CUTOFF or force_mp():
                return "mp" if wants_mp else "sharded"
            return "csr"
        if (
            graph.n >= PARALLEL_BFS_AUTO_CUTOFF
            or force_parallel_traversal()
            or force_mp()
        ):
            return "mp" if wants_mp else "parallel"
        return "csr"
    if backend == "auto":
        if isinstance(graph, CSRGraph):
            resolved = "csr"
        else:
            resolved = "csr" if graph.n >= AUTO_CSR_CUTOFF else "dict"
    elif backend not in ("dict", "csr"):
        raise error_cls(f"unknown backend {backend!r}")
    else:
        resolved = backend
    if resolved == "csr" and not peeling:
        if force_mp():
            return "mp"
        if force_parallel_traversal():
            return "parallel"
    return resolved


def apply_degree_decrements(
    remaining: np.ndarray, neighbors: np.ndarray, n: int,
    want_touched: bool = False,
) -> Optional[np.ndarray]:
    """Batched ``remaining[v] -= multiplicity of v in neighbors``.

    The one degree-update primitive shared by the serial peeling wave
    and the sharded reconcile step.  Parallel edges are handled exactly
    like the ``np.subtract.at`` call this replaces — one decrement per
    occurrence — but the dense path is a single ``np.bincount``
    subtraction (buffered, several times faster than the unbuffered
    ``ufunc.at`` scatter on dense waves) and the sparse path a
    sorted-unique scatter that never touches the full array.

    With ``want_touched=True`` returns the sorted unique decremented
    indices (the sharded reconcile uses them to find the vertices that
    crossed the peeling threshold); returns None otherwise.
    """
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64) if want_touched else None
    if neighbors.size * 4 >= n:
        counts = np.bincount(neighbors, minlength=n)
        remaining -= counts
        return np.flatnonzero(counts) if want_touched else None
    touched, counts = np.unique(neighbors, return_counts=True)
    remaining[touched] -= counts
    return touched if want_touched else None


def bfs_distance_array(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    n: int,
    seeds: Sequence[int],
    radius: Optional[int] = None,
) -> np.ndarray:
    """Frontier-vectorized multi-source BFS over any CSR adjacency.

    The one sweep shared by the snapshot's :meth:`CSRGraph.distance_array`,
    the induced-subgraph diameter scan, and the per-color component
    queries: returns per-index distances (-1 unreached), stopping at
    ``radius`` when given.
    """
    dist = np.full(n, -1, dtype=np.int64)
    if len(seeds) == 0:
        return dist
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    # Negative seeds would silently wrap around under numpy fancy
    # indexing and out-of-range ones would raise a bare IndexError
    # mid-sweep; both are caller bugs worth a real error.
    if frontier[0] < 0 or frontier[-1] >= n:
        bad = frontier[0] if frontier[0] < 0 else frontier[-1]
        raise GraphError(
            f"BFS seed index {int(bad)} out of range for {n} vertices"
        )
    dist[frontier] = 0
    depth = 0
    while frontier.size and (radius is None or depth < radius):
        half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
        targets = np.unique(neighbors[half])
        targets = targets[dist[targets] < 0]
        depth += 1
        dist[targets] = depth
        frontier = targets
    return dist


def mutation_fingerprint(graph) -> Tuple[int, int, int]:
    """A value that changes on every :class:`MultiGraph` mutation.

    ``add_vertex`` bumps ``n``, ``add_edge`` bumps ``_next_edge``
    (monotonically), and ``remove_edge`` drops ``m`` — no edit sequence
    restores all three, so an equal fingerprint means the graph is
    unchanged.  This keys every derived-data cache in the library: the
    per-graph snapshot below and the :class:`~repro.core.session.Session`
    memos (arboricity, pseudoarboricity, per-color sub-CSRs).

    :class:`CSRGraph` inputs are immutable, so their highest edge id
    stands in for the mutation counter — this is what lets a
    memmap-ingested snapshot flow straight into a ``Session``.
    """
    if isinstance(graph, CSRGraph):
        next_edge = (
            int(graph.edge_id[-1]) + 1 if graph.num_edges else 0
        )
        return (graph.n, graph.m, next_edge)
    return (graph.n, graph.m, graph._next_edge)


def _coerce_edge_chunks(source, chunk_edges: int):
    """Yield ``(k, 2)`` int64 chunks from an iterable of pairs or of
    pair-arrays (the non-path inputs of :meth:`CSRGraph.from_edge_iter`)."""
    buffer: List[Tuple[int, int]] = []
    for item in source:
        if isinstance(item, np.ndarray):
            if buffer:
                yield np.asarray(buffer, dtype=np.int64).reshape(-1, 2)
                buffer = []
            yield item
        else:
            buffer.append((int(item[0]), int(item[1])))
            if len(buffer) >= chunk_edges:
                yield np.asarray(buffer, dtype=np.int64)
                buffer = []
    if buffer:
        yield np.asarray(buffer, dtype=np.int64)


def _check_edge_chunk(chunk: np.ndarray) -> np.ndarray:
    """Validate one ingest chunk: shape (k, 2), nonnegative ids, no
    self-loops (mirroring :meth:`MultiGraph.add_edge`)."""
    chunk = np.ascontiguousarray(chunk, dtype=np.int64)
    if chunk.ndim != 2 or chunk.shape[1] != 2:
        raise GraphError(
            f"edge chunk must have shape (k, 2), got {chunk.shape}"
        )
    if chunk.size:
        if int(chunk.min()) < 0:
            raise GraphError("edge endpoints must be nonnegative")
        loops = chunk[:, 0] == chunk[:, 1]
        if loops.any():
            where = int(chunk[int(np.flatnonzero(loops)[0]), 0])
            raise GraphError(f"self-loop at vertex {where} is not allowed")
    return chunk


class EdgeArrayMap(Mapping):
    """Array-backed read-only ``edge id -> value`` mapping.

    The orientation / pseudoforest layers historically returned plain
    dicts; at 10^7+ edges that dict alone costs ~1GB of pointerful
    heap.  This class keeps the data as two parallel arrays (edge ids
    in position order, values) and only materializes a dict if a caller
    actually does scalar lookups — the full :class:`Mapping` API
    (``keys`` / ``items`` / ``values`` / ``==`` / iteration) works
    either way, so every existing consumer (validators, ``to_json``,
    the delta engine's bit-identity asserts) sees dict semantics.

    Equality against another :class:`EdgeArrayMap` takes the O(m)
    array fast path with no allocation; against a dict it falls back to
    the Mapping contract (``dict(self) == other``).
    """

    __slots__ = ("eids", "vals", "_dict")

    def __init__(self, eids: np.ndarray, values: np.ndarray) -> None:
        self.eids = eids
        self.vals = values
        self._dict: Optional[Dict[int, int]] = None

    def _materialize(self) -> Dict[int, int]:
        if self._dict is None:
            self._dict = dict(
                zip(self.eids.tolist(), self.vals.tolist())
            )
        return self._dict

    def __getitem__(self, eid: int) -> int:
        return self._materialize()[eid]

    def __iter__(self):
        return iter(self.eids.tolist())

    def __len__(self) -> int:
        return int(self.eids.size)

    def __contains__(self, eid) -> bool:
        return eid in self._materialize()

    def __eq__(self, other) -> bool:
        if isinstance(other, EdgeArrayMap):
            if self.eids is other.eids or np.array_equal(
                self.eids, other.eids
            ):
                return bool(np.array_equal(self.vals, other.vals))
            return self._materialize() == other._materialize()
        if isinstance(other, dict):
            return self._materialize() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __repr__(self) -> str:
        return f"EdgeArrayMap({len(self)} edges)"


def snapshot_of(graph) -> "CSRGraph":
    """Cached CSR snapshot of a graph (identity for :class:`CSRGraph`).

    The cache lives on the :class:`MultiGraph` instance, keyed by
    :func:`mutation_fingerprint`: a fingerprint hit means the graph is
    unchanged since the snapshot was taken.
    """
    if isinstance(graph, CSRGraph):
        return graph
    fingerprint = mutation_fingerprint(graph)
    cached = graph.__dict__.get("_csr_snapshot_cache")
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    snapshot = CSRGraph.from_multigraph(graph)
    graph.__dict__["_csr_snapshot_cache"] = (fingerprint, snapshot)
    return snapshot


class CSRGraph:
    """Immutable flat-array snapshot of a :class:`MultiGraph`."""

    __slots__ = (
        "num_vertices",
        "num_edges",
        "vertex_ids",
        "vertex_offsets",
        "neighbor_ids",
        "edge_ids",
        "edge_u",
        "edge_v",
        "edge_id",
        "edge_u_ids",
        "edge_v_ids",
        "_index_of",
        "_eid_pos",
        "_endpoint_lists",
        "_adj_lists",
        "_vertex_id_list",
        "_shard_plan_cache",
        "mmap_dir",
    )

    def __init__(
        self,
        vertex_ids: np.ndarray,
        vertex_offsets: np.ndarray,
        neighbor_ids: np.ndarray,
        edge_ids: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_id: np.ndarray,
        index_of: Optional[Dict[int, int]],
        eid_pos: Optional[Dict[int, int]],
        mmap_dir: Optional[str] = None,
    ) -> None:
        self.num_vertices = int(vertex_ids.shape[0])
        self.num_edges = int(edge_id.shape[0])
        self.vertex_ids = vertex_ids
        self.vertex_offsets = vertex_offsets
        self.neighbor_ids = neighbor_ids
        self.edge_ids = edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.edge_id = edge_id
        # Identity vertex numbering means vertex_ids[edge_u] == edge_u
        # element-wise; aliasing instead of gathering keeps out-of-core
        # snapshots from materializing two m-length arrays in RAM
        # (snapshots are immutable, so sharing storage is safe).
        if index_of is None or self.num_edges == 0:
            self.edge_u_ids = edge_u
            self.edge_v_ids = edge_v
        else:
            self.edge_u_ids = vertex_ids[edge_u]
            self.edge_v_ids = vertex_ids[edge_v]
        self._index_of = index_of  # None => identity (ids are 0..n-1)
        self._eid_pos = eid_pos  # None => identity (ids are 0..m-1)
        self._endpoint_lists: Optional[Tuple[Sequence, Sequence]] = None
        self._adj_lists: Optional[Tuple[List[int], List[int]]] = None
        self._vertex_id_list: Optional[List[int]] = None
        # Default ShardPlan over this snapshot (repro.graph.shard);
        # snapshots are immutable, so the plan never invalidates.
        self._shard_plan_cache = None
        #: directory holding this snapshot's .npy memmaps (None = RAM)
        self.mmap_dir = mmap_dir

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_multigraph(cls, graph: MultiGraph) -> "CSRGraph":
        """Snapshot ``graph``; O(n + m) with vectorized CSR assembly."""
        n = graph.n
        m = graph.m
        vertex_ids = np.fromiter(graph._adj.keys(), dtype=np.int64, count=n)
        identity_vertices = bool(
            n == 0 or np.array_equal(vertex_ids, np.arange(n, dtype=np.int64))
        )
        index_of = (
            None
            if identity_vertices
            else {int(v): i for i, v in enumerate(vertex_ids.tolist())}
        )

        edge_id = np.fromiter(graph._edges.keys(), dtype=np.int64, count=m)
        endpoints = graph._edges.values()
        u_raw = np.fromiter((uv[0] for uv in endpoints), dtype=np.int64, count=m)
        v_raw = np.fromiter((uv[1] for uv in endpoints), dtype=np.int64, count=m)
        if index_of is None:
            edge_u, edge_v = u_raw, v_raw
        else:
            edge_u = np.fromiter(
                (index_of[u] for u in u_raw.tolist()), dtype=np.int64, count=m
            )
            edge_v = np.fromiter(
                (index_of[v] for v in v_raw.tolist()), dtype=np.int64, count=m
            )
        identity_edges = bool(
            m == 0 or np.array_equal(edge_id, np.arange(m, dtype=np.int64))
        )
        eid_pos = (
            None
            if identity_edges
            else {int(e): pos for pos, e in enumerate(edge_id.tolist())}
        )

        vertex_offsets, neighbor_ids, edge_ids = _half_edge_csr(
            n, edge_u, edge_v, edge_id
        )

        return cls(
            vertex_ids,
            vertex_offsets,
            neighbor_ids,
            edge_ids,
            edge_u,
            edge_v,
            edge_id,
            index_of,
            eid_pos,
        )

    @classmethod
    def from_edge_iter(
        cls,
        source,
        n: Optional[int] = None,
        mmap_dir: Optional[str] = None,
        chunk_edges: int = 1 << 20,
    ) -> "CSRGraph":
        """Build a snapshot from a streamed edge list, optionally
        out-of-core.

        ``source`` is a path to an edge-list / SNAP text file (parsed
        in chunks via :func:`repro.graph.io.iter_edge_chunks`), an
        iterable of ``(u, v)`` pairs, or an iterable of ``(k, 2)``
        integer arrays.  Vertex ids must be nonnegative; the snapshot
        covers ``0..n-1`` (``n`` defaults to ``max id + 1``, so gaps
        become isolated vertices) and edge ids are assigned in stream
        order — **byte-identical** to
        ``from_multigraph(MultiGraph.from_edges(n, pairs))``, which the
        equivalence tests assert.

        With ``mmap_dir`` every snapshot array lives in an ``.npy``
        file under that directory (``np.lib.format.open_memmap``), so a
        10^7–10^8-edge graph streams from disk into ``decompose()``
        instead of living in RAM; transient state is one O(n) counter
        array plus one chunk.  The ingest is two counting passes plus
        two cursor-scatter passes that reproduce the stable
        u-side-then-v-side half-edge order of ``_half_edge_csr``
        without ever sorting the full 2m-length arrays.
        """
        if isinstance(source, (str, os.PathLike)):
            from .io import iter_edge_chunks

            chunks = iter_edge_chunks(source, chunk_edges)
        else:
            chunks = _coerce_edge_chunks(source, chunk_edges)

        # -- spool the stream so the later passes can re-read it -------
        max_id = -1
        m = 0
        if mmap_dir is not None:
            os.makedirs(mmap_dir, exist_ok=True)
            spool_path = os.path.join(mmap_dir, "edge-spool.bin")
            with open(spool_path, "wb") as spool:
                for chunk in chunks:
                    chunk = _check_edge_chunk(chunk)
                    if chunk.size:
                        max_id = max(max_id, int(chunk.max()))
                        m += chunk.shape[0]
                        spool.write(chunk.tobytes())
            edges = (
                np.memmap(spool_path, dtype=np.int64, mode="r", shape=(m, 2))
                if m
                else np.empty((0, 2), dtype=np.int64)
            )
        else:
            parts = []
            for chunk in chunks:
                chunk = _check_edge_chunk(chunk)
                if chunk.size:
                    max_id = max(max_id, int(chunk.max()))
                    m += chunk.shape[0]
                    parts.append(chunk)
            edges = (
                np.concatenate(parts)
                if parts
                else np.empty((0, 2), dtype=np.int64)
            )
        if n is None:
            n = max_id + 1
        elif max_id >= n:
            raise GraphError(
                f"edge endpoint {max_id} out of range for n={n} vertices"
            )
        n = int(n)

        def alloc(name: str, shape, dtype=np.int64) -> np.ndarray:
            if mmap_dir is None:
                return np.zeros(shape, dtype=dtype)
            return np.lib.format.open_memmap(
                os.path.join(mmap_dir, f"{name}.npy"),
                mode="w+",
                dtype=dtype,
                shape=shape if isinstance(shape, tuple) else (shape,),
            )

        # -- counting pass: degrees + per-vertex u-side counts ---------
        counts = np.zeros(n, dtype=np.int64)
        count_u = np.zeros(n, dtype=np.int64)
        for lo in range(0, m, chunk_edges):
            block = np.asarray(edges[lo : lo + chunk_edges])
            bu = np.bincount(block[:, 0], minlength=n)
            count_u += bu
            counts += bu
            counts += np.bincount(block[:, 1], minlength=n)

        vertex_offsets = alloc("vertex_offsets", n + 1)
        np.cumsum(counts, out=vertex_offsets[1:])
        vertex_offsets[0] = 0
        del counts

        neighbor_ids = alloc("neighbor_ids", 2 * m)
        edge_ids = alloc("edge_ids", 2 * m)
        edge_u = alloc("edge_u", m)
        edge_v = alloc("edge_v", m)
        edge_id = alloc("edge_id", m)
        vertex_ids = alloc("vertex_ids", n)
        for lo in range(0, n, chunk_edges):
            hi = min(n, lo + chunk_edges)
            vertex_ids[lo:hi] = np.arange(lo, hi, dtype=np.int64)
        for lo in range(0, m, chunk_edges):
            hi = min(m, lo + chunk_edges)
            edge_id[lo:hi] = np.arange(lo, hi, dtype=np.int64)

        # -- scatter passes: u-side halves first, then v-side ----------
        # ``_half_edge_csr`` stable-sorts concat(u-block, v-block) by
        # source, so within each vertex all u-side half-edges appear in
        # edge-position order, then all v-side ones.  Two cursor passes
        # over the stream write exactly that layout.
        cursor = np.asarray(vertex_offsets[:n]).copy()
        for side in (0, 1):
            for lo in range(0, m, chunk_edges):
                hi = min(m, lo + chunk_edges)
                block = np.asarray(edges[lo:hi])
                src = block[:, side]
                dst = block[:, 1 - side]
                if side == 0:
                    edge_u[lo:hi] = src
                    edge_v[lo:hi] = dst
                order = np.argsort(src, kind="stable")
                src_sorted = src[order]
                run_starts = np.flatnonzero(
                    np.concatenate(
                        ([True], src_sorted[1:] != src_sorted[:-1])
                    )
                ) if src_sorted.size else np.empty(0, dtype=np.int64)
                run_lengths = np.diff(
                    np.concatenate((run_starts, [src_sorted.size]))
                )
                rank = np.arange(
                    src_sorted.size, dtype=np.int64
                ) - np.repeat(run_starts, run_lengths)
                slots = cursor[src_sorted] + rank
                neighbor_ids[slots] = dst[order]
                edge_ids[slots] = lo + order
                cursor[src_sorted[run_starts]] += run_lengths
            if side == 0:
                # v-side halves start after each vertex's u-side block.
                cursor = np.asarray(vertex_offsets[:n]) + count_u
        del count_u

        if mmap_dir is not None:
            for arr in (
                vertex_offsets, neighbor_ids, edge_ids,
                edge_u, edge_v, edge_id, vertex_ids,
            ):
                arr.flush()
            del edges
            os.remove(spool_path)

        return cls(
            vertex_ids,
            vertex_offsets,
            neighbor_ids,
            edge_ids,
            edge_u,
            edge_v,
            edge_id,
            None,
            None,
            mmap_dir=mmap_dir,
        )

    # ------------------------------------------------------------------
    # MultiGraph-compatible surface
    # ------------------------------------------------------------------
    #
    # The traversal layer and the network decomposition accept either
    # substrate; these make a snapshot answer the (read-only) subset of
    # the MultiGraph API those algorithms touch.

    @property
    def n(self) -> int:
        """Number of vertices (MultiGraph-compatible)."""
        return self.num_vertices

    @property
    def m(self) -> int:
        """Number of edges, counting multiplicities (MultiGraph-compatible)."""
        return self.num_edges

    def vertices(self) -> List[int]:
        """Original vertex ids, in the source graph's insertion order."""
        return list(self.vertex_id_list())

    def has_vertex(self, vertex: int) -> bool:
        try:
            self.index_of(vertex)
        except GraphError:
            return False
        return True

    def neighbors(self, vertex: int) -> List[int]:
        """Distinct neighboring vertex ids (in dense-index order)."""
        i = self.index_of(vertex)
        start, stop = self.incident_slice(i)
        return self.vertex_ids[np.unique(self.neighbor_ids[start:stop])].tolist()

    def edges(self):
        """Iterate ``(eid, u, v)`` triples in edge-position order."""
        return zip(
            self.edge_id.tolist(),
            self.edge_u_ids.tolist(),
            self.edge_v_ids.tolist(),
        )

    # ------------------------------------------------------------------
    # Vertex-level queries
    # ------------------------------------------------------------------

    def index_of(self, vertex: int) -> int:
        """Dense index of an original vertex id."""
        if self._index_of is None:
            if 0 <= vertex < self.num_vertices:
                return vertex
            raise GraphError(f"vertex {vertex} does not exist")
        try:
            return self._index_of[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex} does not exist") from None

    def degree(self, vertex: int) -> int:
        """Degree of an original vertex id (parallel edges counted); O(1)."""
        i = self.index_of(vertex)
        return int(self.vertex_offsets[i + 1] - self.vertex_offsets[i])

    def degrees(self) -> np.ndarray:
        """Degrees of all vertices, indexed by dense vertex index."""
        return np.diff(self.vertex_offsets)

    def incident_slice(self, index: int) -> Tuple[int, int]:
        """Half-edge range ``[start, stop)`` of vertex index ``index``."""
        return int(self.vertex_offsets[index]), int(self.vertex_offsets[index + 1])

    def endpoints(self, eid: int) -> Tuple[int, int]:
        """Original ``(u, v)`` vertex ids of edge ``eid``."""
        pos = eid if self._eid_pos is None else self._eid_pos[eid]
        return int(self.edge_u_ids[pos]), int(self.edge_v_ids[pos])

    def endpoint_maps(self) -> Tuple[Sequence, Sequence]:
        """Scalar-fast ``eid -> endpoint id`` lookups ``(u_of, v_of)``.

        Plain Python lists indexed by edge id when edge ids are dense
        (the common case), dicts otherwise — both support ``obj[eid]``
        and beat repeated numpy scalar indexing in tight loops.
        """
        if self._endpoint_lists is None:
            u_ids = self.edge_u_ids.tolist()
            v_ids = self.edge_v_ids.tolist()
            if self._eid_pos is None:
                self._endpoint_lists = (u_ids, v_ids)
            else:
                eids = self.edge_id.tolist()
                self._endpoint_lists = (
                    dict(zip(eids, u_ids)),
                    dict(zip(eids, v_ids)),
                )
        return self._endpoint_lists

    def adjacency_lists(self) -> Tuple[List[int], List[int]]:
        """``(vertex_offsets, neighbor_ids)`` as cached Python lists.

        Scalar peeling loops (delete-min) index these millions of
        times; list indexing returns native ints, unlike numpy scalar
        indexing, which is several times slower in tight loops.
        """
        if self._adj_lists is None:
            self._adj_lists = (
                self.vertex_offsets.tolist(),
                self.neighbor_ids.tolist(),
            )
        return self._adj_lists

    def vertex_id_list(self) -> List[int]:
        """``vertex_ids`` as a cached Python list (scalar-loop companion)."""
        if self._vertex_id_list is None:
            self._vertex_id_list = self.vertex_ids.tolist()
        return self._vertex_id_list

    # ------------------------------------------------------------------
    # Set / mask helpers (the CUT region primitives)
    # ------------------------------------------------------------------

    def mask_of(self, vertices: Iterable[int]) -> np.ndarray:
        """Boolean membership mask over dense indices from original ids."""
        mask = np.zeros(self.num_vertices, dtype=bool)
        if self._index_of is None:
            ids = np.fromiter(vertices, dtype=np.int64)
            if ids.size and (
                int(ids.min()) < 0 or int(ids.max()) >= self.num_vertices
            ):
                bad = ids[(ids < 0) | (ids >= self.num_vertices)][0]
                raise GraphError(f"vertex {int(bad)} does not exist")
            mask[ids] = True
        else:
            for vertex in vertices:
                mask[self.index_of(vertex)] = True
        return mask

    def vertex_set_from_mask(self, mask: np.ndarray) -> Set[int]:
        """Original vertex ids selected by a dense-index mask."""
        return set(self.vertex_ids[mask].tolist())

    def neighborhood_mask(
        self, sources: Iterable[int], radius: Optional[int]
    ) -> np.ndarray:
        """``N^r(X)`` as a dense-index mask, via frontier-vectorized BFS."""
        visited = self.mask_of(sources)
        frontier = np.flatnonzero(visited)
        offsets = self.vertex_offsets
        depth = 0
        while frontier.size and (radius is None or depth < radius):
            half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
            targets = np.unique(self.neighbor_ids[half])
            targets = targets[~visited[targets]]
            visited[targets] = True
            frontier = targets
            depth += 1
        return visited

    def neighborhood_set(
        self, sources: Iterable[int], radius: Optional[int]
    ) -> Set[int]:
        """``N^r(X)`` as a set of original vertex ids (drop-in for
        :func:`repro.graph.traversal.neighborhood`)."""
        return self.vertex_set_from_mask(self.neighborhood_mask(sources, radius))

    # ------------------------------------------------------------------
    # Traversal primitives (frontier-array BFS)
    # ------------------------------------------------------------------

    def distance_array(
        self, source_indices: Sequence[int], radius: Optional[int] = None
    ) -> np.ndarray:
        """Multi-source BFS distances over dense indices (-1 unreached).

        One frontier-vectorized sweep; vertices beyond ``radius`` (if
        given) stay at -1.
        """
        return bfs_distance_array(
            self.vertex_offsets,
            self.neighbor_ids,
            self.num_vertices,
            source_indices,
            radius,
        )

    def component_labels(self) -> np.ndarray:
        """Connected-component label per dense index: the minimum dense
        index of the component, via min-label propagation with pointer
        jumping (O(log n) rounds of O(m) array work)."""
        labels = np.arange(self.num_vertices, dtype=np.int64)
        if self.num_edges == 0 or self.num_vertices == 0:
            return labels
        u, v = self.edge_u, self.edge_v
        while True:
            nxt = labels.copy()
            np.minimum.at(nxt, u, labels[v])
            np.minimum.at(nxt, v, labels[u])
            while True:
                hop = nxt[nxt]
                if np.array_equal(hop, nxt):
                    break
                nxt = hop
            if np.array_equal(nxt, labels):
                return labels
            labels = nxt

    def power_csr(self, radius: int) -> "CSRGraph":
        """The power graph ``G^radius`` as a fresh simple CSR snapshot.

        Runs simultaneous BFS from blocks of sources over boolean
        reachability matrices and assembles the CSR adjacency directly
        from the visited masks — the dict multigraph of the reference
        path is never materialized.  Vertex ids (and their order) are
        shared with this snapshot; power-edge ids are dense ``0..m'-1``
        assigned in (u, v) dense-index lexicographic order.
        """
        if radius < 1:
            raise GraphError(f"power graph radius must be >= 1, got {radius}")
        n = self.num_vertices
        offsets = self.vertex_offsets
        nbr = self.neighbor_ids
        # Block size bounds the boolean reachability matrix at ~2M cells.
        block = max(1, min(n, 2_000_000 // max(1, n)))
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for start in range(0, n, block):
            sources = np.arange(start, min(start + block, n), dtype=np.int64)
            b = sources.size
            visited = np.zeros((b, n), dtype=bool)
            visited[np.arange(b), sources] = True
            frontier = visited.copy()
            depth = 0
            while depth < radius:
                rows, cols = np.nonzero(frontier)
                if rows.size == 0:
                    break
                lengths = offsets[cols + 1] - offsets[cols]
                half = _concat_ranges(offsets[cols], offsets[cols + 1])
                fresh = np.zeros_like(visited)
                fresh[np.repeat(rows, lengths), nbr[half]] = True
                fresh &= ~visited
                visited |= fresh
                frontier = fresh
                depth += 1
            rows, cols = np.nonzero(visited)
            src = sources[rows]
            keep = src != cols  # drop the distance-0 self-pairs
            src_parts.append(src[keep])
            dst_parts.append(cols[keep])

        if src_parts:
            half_src = np.concatenate(src_parts)
            half_dst = np.concatenate(dst_parts)
        else:
            half_src = np.empty(0, dtype=np.int64)
            half_dst = np.empty(0, dtype=np.int64)
        # Blocks emit sources in ascending order and np.nonzero is
        # row-major, so (half_src, half_dst) is already lexicographically
        # sorted: it IS the CSR adjacency.
        counts = (
            np.bincount(half_src, minlength=n)
            if half_src.size
            else np.zeros(n, np.int64)
        )
        power_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=power_offsets[1:])
        forward = half_src < half_dst
        edge_u = half_src[forward]
        edge_v = half_dst[forward]
        edge_id = np.arange(edge_u.size, dtype=np.int64)
        # Reachability is symmetric, so every half-edge's (min, max) key
        # appears among the forward pairs; the forward pairs are sorted
        # by construction, so ids resolve by binary search.
        if half_src.size:
            edge_keys = edge_u * n + edge_v
            half_keys = (
                np.minimum(half_src, half_dst) * n
                + np.maximum(half_src, half_dst)
            )
            half_eids = np.searchsorted(edge_keys, half_keys)
        else:
            half_eids = np.empty(0, dtype=np.int64)
        return CSRGraph(
            self.vertex_ids,
            power_offsets,
            half_dst,
            half_eids,
            edge_u,
            edge_v,
            edge_id,
            self._index_of,
            None,
        )

    # ------------------------------------------------------------------
    # Subgraph extraction (per-color / induced sub-CSR)
    # ------------------------------------------------------------------

    def edge_positions(self, eids: Sequence[int]) -> np.ndarray:
        """Dense edge positions of the given original edge ids."""
        if self._eid_pos is None:
            return np.asarray(eids, dtype=np.int64)
        pos_of = self._eid_pos
        vectorized = getattr(pos_of, "positions", None)
        if vectorized is not None:
            # array-backed position maps (the delta engine's
            # searchsorted variant) resolve whole batches at once
            return vectorized(np.asarray(eids, dtype=np.int64))
        return np.fromiter(
            (pos_of[e] for e in eids), dtype=np.int64, count=len(eids)
        )

    def edge_subset_csr_arrays(
        self, eids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency ``(offsets, neighbors, edge ids)`` of the
        subgraph formed by ``eids``, over this snapshot's dense indices.

        This is the per-color extraction primitive: a color class is an
        edge subset, and its BFS runs on these arrays at kernel speed.
        """
        positions = self.edge_positions(eids)
        return _half_edge_csr(
            self.num_vertices,
            self.edge_u[positions],
            self.edge_v[positions],
            self.edge_id[positions],
        )

    def induced_sub_csr(
        self, members: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compacted CSR adjacency ``(offsets, neighbors)`` of the
        subgraph induced by sorted unique dense indices ``members``,
        relabeled to local indices ``0..k-1``.

        Work is proportional to the members' incident half-edges (plus
        one O(n) relabel table), so per-cluster queries stay cheap on
        large host graphs.
        """
        k = int(members.size)
        local = np.full(self.num_vertices, -1, dtype=np.int64)
        local[members] = np.arange(k, dtype=np.int64)
        starts = self.vertex_offsets[members]
        ends = self.vertex_offsets[members + 1]
        half = _concat_ranges(starts, ends)
        src_local = np.repeat(np.arange(k, dtype=np.int64), ends - starts)
        dst_local = local[self.neighbor_ids[half]]
        keep = dst_local >= 0
        src_local = src_local[keep]
        dst_local = dst_local[keep]
        counts = (
            np.bincount(src_local, minlength=k)
            if src_local.size
            else np.zeros(k, np.int64)
        )
        offsets = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, dst_local

    # ------------------------------------------------------------------

    def peeling_view(self) -> "PeelingView":
        return PeelingView(self)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"


class PeelingView:
    """Incremental vertex-deletion bookkeeping over a :class:`CSRGraph`.

    Tracks, per dense vertex index, liveness and remaining degree
    (counting parallel edges).  ``peel_leq`` serves the H-partition
    threshold waves; ``pop_min`` serves degeneracy's delete-min.

    The two disciplines want different representations: threshold waves
    are numpy-vectorized over degree arrays, while delete-min is a
    scalar loop where plain Python lists beat numpy scalar indexing by
    a wide margin.  The view therefore starts in *array mode* and
    switches to *scalar mode* on the first ``pop_min``; both operations
    stay correct in either mode (a post-switch ``peel_leq`` runs a
    scalar wave), so the disciplines may be interleaved.

    Delete-min uses a bucket queue — one small min-heap of vertices per
    remaining degree, with lazy deletion of stale entries — so the
    frequent operation (a neighbor's degree drops by one) costs an
    integer push instead of a tuple push into one big heap.
    """

    __slots__ = (
        "snapshot",
        "alive_count",
        "_alive_arr",
        "_remaining_arr",
        "_alive",
        "_remaining",
        "_buckets",
        "_dmin",
        "_identity",
    )

    def __init__(self, snapshot: CSRGraph) -> None:
        self.snapshot = snapshot
        self.alive_count = snapshot.num_vertices
        # Array mode state (scalar mode swaps these for Python lists).
        self._alive_arr: Optional[np.ndarray] = np.ones(
            snapshot.num_vertices, dtype=bool
        )
        self._remaining_arr: Optional[np.ndarray] = snapshot.degrees().astype(
            np.int64, copy=True
        )
        self._alive: Optional[List[bool]] = None
        self._remaining: Optional[List[int]] = None
        # Bucket entries are vertex indices (or (vertex id, index) when
        # original ids differ from indices, to keep the id tie-break).
        self._identity = snapshot._index_of is None
        self._buckets: Optional[List[list]] = None
        self._dmin = 0

    # -- threshold peeling ---------------------------------------------

    def peel_leq(self, threshold: int) -> np.ndarray:
        """Remove every live vertex of remaining degree ≤ ``threshold``.

        Returns the removed dense indices (ascending).  Neighbors that
        survive the wave lose one degree per connecting parallel edge —
        exactly one H-partition wave, fully vectorized in array mode.
        """
        if self._alive_arr is None:
            return self._peel_leq_scalar(threshold)
        alive = self._alive_arr
        remaining = self._remaining_arr
        removed = np.flatnonzero(alive & (remaining <= threshold))
        if removed.size == 0:
            return removed
        alive[removed] = False
        self.alive_count -= int(removed.size)
        offsets = self.snapshot.vertex_offsets
        half = _concat_ranges(offsets[removed], offsets[removed + 1])
        neighbors = self.snapshot.neighbor_ids[half]
        neighbors = neighbors[alive[neighbors]]
        apply_degree_decrements(remaining, neighbors, self.snapshot.num_vertices)
        return removed

    def _peel_leq_scalar(self, threshold: int) -> np.ndarray:
        """Scalar-mode wave (after ``pop_min`` switched representations)."""
        alive = self._alive
        remaining = self._remaining
        removed = [
            i for i in range(self.snapshot.num_vertices)
            if alive[i] and remaining[i] <= threshold
        ]
        if not removed:
            return np.empty(0, dtype=np.int64)
        for i in removed:
            alive[i] = False
        self.alive_count -= len(removed)
        offsets, neighbors = self.snapshot.adjacency_lists()
        vertex_ids = self.snapshot.vertex_id_list()
        buckets = self._buckets
        for i in removed:
            for half in range(offsets[i], offsets[i + 1]):
                j = neighbors[half]
                if alive[j]:
                    degree = remaining[j] - 1
                    remaining[j] = degree
                    entry = j if self._identity else (vertex_ids[j], j)
                    heapq.heappush(buckets[degree], entry)
                    if degree < self._dmin:
                        self._dmin = degree
        return np.asarray(removed, dtype=np.int64)

    # -- delete-min peeling --------------------------------------------

    def pop_min(self) -> Optional[Tuple[int, int]]:
        """Remove the live vertex minimizing ``(remaining degree, id)``.

        Returns ``(dense index, degree at removal)``, or None when no
        vertex is left.  Ties break on original vertex id, matching the
        dict-backed heap implementation entry for entry.  The heap
        tolerates stale entries because degrees only ever decrease.
        """
        if self._buckets is None:
            self._enter_scalar_mode()
        buckets = self._buckets
        alive = self._alive
        remaining = self._remaining
        offsets, neighbors = self.snapshot.adjacency_lists()
        heappop = heapq.heappop
        heappush = heapq.heappush
        num_buckets = len(buckets)
        identity = self._identity

        # Find the live vertex minimizing (degree, id): advance past
        # empty buckets, discard stale entries (dead vertex or degree
        # changed since the entry was pushed).
        deg = self._dmin
        while True:
            while deg < num_buckets and not buckets[deg]:
                deg += 1
            if deg >= num_buckets:
                self._dmin = deg
                return None
            entry = heappop(buckets[deg])
            index = entry if identity else entry[1]
            if alive[index] and remaining[index] == deg:
                break

        alive[index] = False
        self.alive_count -= 1
        if identity:
            for half in range(offsets[index], offsets[index + 1]):
                j = neighbors[half]
                if alive[j]:
                    degree = remaining[j] - 1
                    remaining[j] = degree
                    heappush(buckets[degree], j)
                    if degree < deg:
                        deg = degree
        else:
            vertex_ids = self.snapshot.vertex_id_list()
            for half in range(offsets[index], offsets[index + 1]):
                j = neighbors[half]
                if alive[j]:
                    degree = remaining[j] - 1
                    remaining[j] = degree
                    heappush(buckets[degree], (vertex_ids[j], j))
                    if degree < deg:
                        deg = degree
        self._dmin = deg
        return index, remaining[index]

    def _enter_scalar_mode(self) -> None:
        self._alive = self._alive_arr.tolist()
        self._remaining = self._remaining_arr.tolist()
        self._alive_arr = None
        self._remaining_arr = None
        max_degree = max(self._remaining, default=0)
        buckets: List[list] = [[] for _ in range(max_degree + 1)]
        if self._identity:
            # Indices are appended in ascending order, so each bucket
            # is already a valid min-heap.
            for i, degree in enumerate(self._remaining):
                if self._alive[i]:
                    buckets[degree].append(i)
        else:
            vertex_ids = self.snapshot.vertex_id_list()
            for i, degree in enumerate(self._remaining):
                if self._alive[i]:
                    buckets[degree].append((vertex_ids[i], i))
            for bucket in buckets:
                heapq.heapify(bucket)
        self._buckets = buckets
        self._dmin = 0

    # -- introspection --------------------------------------------------

    def is_alive(self, index: int) -> bool:
        alive = self._alive_arr if self._alive_arr is not None else self._alive
        return bool(alive[index])

    def remaining_degree(self, index: int) -> int:
        remaining = (
            self._remaining_arr if self._remaining_arr is not None else self._remaining
        )
        return int(remaining[index])


# ----------------------------------------------------------------------
# Forest rooting on the kernel
# ----------------------------------------------------------------------


class ForestArrays:
    """Array form of a rooted forest: per dense vertex index, BFS depth
    (-1 when unspanned) and parent edge id (-1 for roots/unspanned)."""

    __slots__ = ("snapshot", "depth", "parent_eid", "roots", "max_depth")

    def __init__(
        self,
        snapshot: CSRGraph,
        depth: np.ndarray,
        parent_eid: np.ndarray,
        roots: List[int],
    ) -> None:
        self.snapshot = snapshot
        self.depth = depth
        self.parent_eid = parent_eid
        self.roots = roots
        # Clamp at 0: an edgeless forest has depth -1 everywhere but,
        # like RootedForest.max_depth(), reports depth 0.
        self.max_depth = max(0, int(depth.max())) if depth.size else 0


def rooted_forest_arrays(
    snapshot: CSRGraph,
    eids: Sequence[int],
    preferred_roots: Optional[Iterable[int]] = None,
    engine=None,
) -> ForestArrays:
    """Root the forest formed by ``eids``, entirely on flat arrays.

    Root selection matches :class:`repro.graph.forests.RootedForest`:
    each tree is rooted at its smallest preferred vertex if any member
    of ``preferred_roots`` is present, else at its minimum vertex id.
    Raises :class:`GraphError` when the edges contain a cycle.

    A union-find pass validates acyclicity and groups components; one
    multi-source frontier-vectorized BFS then assigns depths and parent
    edges (unique in a forest, so no tie-breaking is needed).  An
    optional :class:`~repro.parallel.engine.WaveEngine` fans each BFS
    level's gather out across shard-aligned frontier groups —
    bit-identical depths for every worker count (duck-typed so this
    module stays independent of :mod:`repro.parallel`).
    """
    n = snapshot.num_vertices
    depth = np.full(n, -1, dtype=np.int64)
    parent_eid = np.full(n, -1, dtype=np.int64)
    eid_list = list(eids)
    if not eid_list:
        return ForestArrays(snapshot, depth, parent_eid, [])

    positions = snapshot.edge_positions(eid_list)
    sub_u = snapshot.edge_u[positions]
    sub_v = snapshot.edge_v[positions]
    sub_eid = snapshot.edge_id[positions]

    # Union-find: validate forest, group components.
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for a, b in zip(sub_u.tolist(), sub_v.tolist()):
        if a not in parent:
            parent[a] = a
        if b not in parent:
            parent[b] = b
        ra, rb = find(a), find(b)
        if ra == rb:
            raise GraphError("edge set is not a forest")
        parent[rb] = ra

    vertex_ids = snapshot.vertex_ids
    preferred = set(preferred_roots) if preferred_roots is not None else set()
    best: Dict[int, Tuple[int, int]] = {}  # component rep -> (best key, index)
    for index in parent:
        rep = find(index)
        vid = int(vertex_ids[index])
        key = (0, vid) if vid in preferred else (1, vid)
        if rep not in best or key < best[rep][0]:
            best[rep] = (key, index)
    roots = [index for _key, index in best.values()]

    # Sub-CSR over the forest edges, then one multi-source BFS.
    sub_offsets, sub_nbr, sub_edge = _half_edge_csr(n, sub_u, sub_v, sub_eid)

    def expand(part: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Shard-phase kernel: reads the frozen depth array, returns the
        # fresh (target, parent edge) pairs of its frontier slice.
        half = _concat_ranges(sub_offsets[part], sub_offsets[part + 1])
        targets = sub_nbr[half]
        via = sub_edge[half]
        fresh = depth[targets] < 0
        return targets[fresh], via[fresh]

    frontier = np.asarray(sorted(roots), dtype=np.int64)
    depth[frontier] = 0
    level = 0
    while frontier.size:
        level += 1
        if engine is None:
            targets, via = expand(frontier)
        else:
            # Shard-aligned groups need an ascending work-list; depth /
            # parent assignments are per unique target (forests reach
            # each vertex once per level), so sorting is output-free.
            work = np.sort(frontier)
            cost = int((sub_offsets[work + 1] - sub_offsets[work]).sum())
            targets, via = engine.gather(expand, work, cost)
        depth[targets] = level
        parent_eid[targets] = via
        frontier = targets

    return ForestArrays(snapshot, depth, parent_eid, sorted(roots))


def rooted_forest_class_depths(
    snapshot: CSRGraph,
    class_positions: Sequence[np.ndarray],
) -> Tuple[List[Tuple[np.ndarray, np.ndarray, np.ndarray]], int]:
    """Root *every* color class's forest in one stacked, fully
    vectorized computation — the concurrent-schedule kernel behind the
    batched depth-cut pass.

    ``class_positions`` holds one array of snapshot edge positions per
    color class.  Classes are stacked into a single disjoint forest
    over synthetic nodes ``class_index * n + vertex_index``, which is
    validated and rooted as a whole: leaf peeling consumes the forest
    inward (proving acyclicity exactly like the union-find on the
    per-class path — a cycle core never reaches degree 1 and trips the
    same :class:`GraphError`), pointer doubling labels each node with
    its tree, every tree is rooted at its minimum original vertex id
    (matching :class:`~repro.graph.forests.RootedForest` and
    :func:`rooted_forest_arrays` root selection), and one multi-source
    BFS assigns depths to all classes simultaneously — wave count is
    the *maximum* tree depth over classes instead of the per-class sum,
    and no per-class python union-find or O(n) scratch is allocated.

    Returns ``(per_class, waves)`` where ``per_class[i]`` is
    ``(depth_u, depth_v, child_vertex_ids)`` aligned with
    ``class_positions[i]`` — exactly the arrays the per-class
    :func:`rooted_forest_arrays` cut path derives — and ``waves``
    counts the frontier-synchronous sweeps (peel + label + BFS).
    """
    sizes = [int(len(p)) for p in class_positions]
    total = sum(sizes)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return [(empty, empty, empty) for _ in sizes], 0

    n = snapshot.num_vertices
    all_pos = np.concatenate(
        [np.asarray(p, dtype=np.int64) for p in class_positions]
    )
    cls = np.repeat(
        np.arange(len(sizes), dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
    )
    key_u = cls * n + snapshot.edge_u[all_pos]
    key_v = cls * n + snapshot.edge_v[all_pos]

    nodes = np.unique(np.concatenate((key_u, key_v)))
    su = np.searchsorted(nodes, key_u)
    sv = np.searchsorted(nodes, key_v)
    count_nodes = int(nodes.size)
    count_edges = int(all_pos.size)

    offsets, nbr, nbr_edge = _half_edge_csr(
        count_nodes, su, sv, np.arange(count_edges, dtype=np.int64)
    )
    deg = (offsets[1:] - offsets[:-1]).astype(np.int64)
    # XOR of incident edge indices: when a node's degree reaches 1 the
    # accumulator *is* its unique remaining edge.  Safe because every
    # stacked node comes from an edge endpoint (degree >= 1).
    exor = np.bitwise_xor.reduceat(nbr_edge, offsets[:-1])

    parent_node = np.full(count_nodes, -1, dtype=np.int64)
    peeled = np.zeros(count_nodes, dtype=bool)
    waves = 0
    peeled_count = 0
    frontier = np.nonzero(deg == 1)[0]
    while frontier.size:
        waves += 1
        edge = exor[frontier]
        nb = np.where(su[edge] == frontier, sv[edge], su[edge])
        # A two-leaf tree (or a final path segment) peels both
        # endpoints in the same wave; keep the smaller node as the
        # survivor so every tree retains exactly one unpeeled center.
        pair = (deg[nb] == 1) & (exor[nb] == edge)
        peel = ~pair | (frontier > nb)
        peel_nodes = frontier[peel]
        peel_nb = nb[peel]
        parent_node[peel_nodes] = peel_nb
        peeled[peel_nodes] = True
        peeled_count += int(peel_nodes.size)
        deg[peel_nodes] = 0
        np.subtract.at(deg, peel_nb, 1)
        np.bitwise_xor.at(exor, peel_nb, edge[peel])
        touched = np.unique(peel_nb)
        frontier = touched[(deg[touched] == 1) & ~peeled[touched]]
    if peeled_count != count_edges:
        raise GraphError("edge set is not a forest")

    # Pointer doubling: label every node with its tree's center.
    label = np.where(peeled, parent_node, np.arange(count_nodes))
    while True:
        waves += 1
        advanced = label[label]
        if np.array_equal(advanced, label):
            break
        label = advanced

    # Root each tree at its minimum original vertex id (vertex ids are
    # unique within a class, so the minimum is unambiguous).
    node_vid = snapshot.vertex_ids[nodes % n]
    order = np.lexsort((node_vid, label))
    sorted_labels = label[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = sorted_labels[1:] != sorted_labels[:-1]
    roots = order[first]

    # One multi-source BFS over the whole stack; a forest reaches each
    # node exactly once, so no per-level dedup is needed.
    depth_s = np.full(count_nodes, -1, dtype=np.int64)
    depth_s[roots] = 0
    frontier = roots
    level = 0
    while frontier.size:
        waves += 1
        level += 1
        half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
        targets = nbr[half]
        targets = targets[depth_s[targets] < 0]
        depth_s[targets] = level
        frontier = targets

    du_all = depth_s[su]
    dv_all = depth_s[sv]
    child_all = np.where(
        du_all > dv_all,
        snapshot.edge_u_ids[all_pos],
        snapshot.edge_v_ids[all_pos],
    )
    bounds = np.cumsum(np.asarray(sizes, dtype=np.int64))[:-1]
    per_class = list(
        zip(
            np.split(du_all, bounds),
            np.split(dv_all, bounds),
            np.split(child_all, bounds),
        )
    )
    return per_class, waves
