"""Rooted-forest utilities.

A *forest* here is a set of edge ids of a host :class:`MultiGraph` that
induces an acyclic subgraph.  The paper constantly roots the trees of a
color class, measures depths, cuts edges at depth residues, and
two-colors trees to extract star-forests — those operations live here.

The *strong diameter* of a tree is the length of its longest path using
only tree edges, matching the paper's definition of the diameter of a
decomposition (Section 1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from .multigraph import MultiGraph
from .union_find import UnionFind


def is_forest(graph: MultiGraph, eids: Iterable[int]) -> bool:
    """True if the given edges contain no cycle (parallel edges count)."""
    uf = UnionFind()
    for eid in eids:
        u, v = graph.endpoints(eid)
        if not uf.union(u, v):
            return False
    return True


class RootedForest:
    """A forest of a host graph, rooted and depth-annotated.

    Parameters
    ----------
    graph:
        Host multigraph.
    eids:
        Edge ids forming the forest (validated).
    roots:
        Optional preferred roots.  Each tree is rooted at its first
        member appearing in ``roots``; trees containing no preferred
        root use their minimum vertex.
    """

    def __init__(
        self,
        graph: MultiGraph,
        eids: Iterable[int],
        roots: Optional[Iterable[int]] = None,
    ) -> None:
        self.graph = graph
        self.eids: List[int] = list(eids)
        if not is_forest(graph, self.eids):
            raise GraphError("edge set is not a forest")
        preferred = set(roots) if roots is not None else set()

        # Adjacency restricted to forest edges.
        self._adj: Dict[int, List[Tuple[int, int]]] = {}
        for eid in self.eids:
            u, v = graph.endpoints(eid)
            self._adj.setdefault(u, []).append((eid, v))
            self._adj.setdefault(v, []).append((eid, u))

        self.parent: Dict[int, Optional[int]] = {}
        self.parent_edge: Dict[int, Optional[int]] = {}
        self.depth: Dict[int, int] = {}
        self.root_of: Dict[int, int] = {}
        self.roots: List[int] = []
        self._children: Dict[int, List[int]] = {}

        visited: Set[int] = set()
        for component in self._components():
            root = min(component)
            for candidate in sorted(component):
                if candidate in preferred:
                    root = candidate
                    break
            self.roots.append(root)
            self._root_tree(root, visited)

    def _components(self) -> List[List[int]]:
        seen: Set[int] = set()
        comps: List[List[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            queue = deque([start])
            while queue:
                vertex = queue.popleft()
                for _eid, other in self._adj[vertex]:
                    if other not in seen:
                        seen.add(other)
                        comp.append(other)
                        queue.append(other)
            comps.append(comp)
        return comps

    def _root_tree(self, root: int, visited: Set[int]) -> None:
        self.parent[root] = None
        self.parent_edge[root] = None
        self.depth[root] = 0
        self.root_of[root] = root
        visited.add(root)
        queue = deque([root])
        while queue:
            vertex = queue.popleft()
            for eid, other in self._adj[vertex]:
                if other not in visited:
                    visited.add(other)
                    self.parent[other] = vertex
                    self.parent_edge[other] = eid
                    self.depth[other] = self.depth[vertex] + 1
                    self.root_of[other] = root
                    self._children.setdefault(vertex, []).append(other)
                    queue.append(other)

    # ------------------------------------------------------------------

    def vertices(self) -> List[int]:
        """Vertices spanned by the forest."""
        return list(self.parent.keys())

    def children(self, vertex: int) -> List[int]:
        return list(self._children.get(vertex, ()))

    def tree_vertices(self, root: int) -> List[int]:
        """All vertices in the tree rooted at ``root``."""
        return [v for v, r in self.root_of.items() if r == root]

    def max_depth(self) -> int:
        """Deepest vertex over all trees (0 for an edgeless forest)."""
        return max(self.depth.values(), default=0)

    def path_to_root(self, vertex: int) -> List[int]:
        """Vertices from ``vertex`` up to (and including) its root."""
        path = [vertex]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path

    def edges_at_depth_residue(self, residue: int, modulus: int) -> List[int]:
        """Parent edges of vertices whose depth ``d`` satisfies
        ``d % modulus == residue`` (and d > 0).

        This is the deletion rule of Theorem 4.2(2): removing these
        edges caps every remaining root-to-leaf chain at ``modulus``.
        """
        if modulus <= 0:
            raise GraphError("modulus must be positive")
        out = []
        for vertex, d in self.depth.items():
            if d > 0 and d % modulus == residue % modulus:
                eid = self.parent_edge[vertex]
                assert eid is not None
                out.append(eid)
        return out

    def strong_diameters(self) -> Dict[int, int]:
        """Strong diameter of each tree, keyed by root.

        Computed by the classic double-BFS trick, valid on trees.
        """
        diameters: Dict[int, int] = {}
        for root in self.roots:
            far_vertex, _ = self._farthest_from(root)
            _, diameter = self._farthest_from(far_vertex)
            diameters[root] = diameter
        return diameters

    def max_strong_diameter(self) -> int:
        """Largest strong diameter over all trees (0 if empty)."""
        diams = self.strong_diameters()
        return max(diams.values(), default=0)

    def _farthest_from(self, start: int) -> Tuple[int, int]:
        dist = {start: 0}
        queue = deque([start])
        far, far_d = start, 0
        while queue:
            vertex = queue.popleft()
            for _eid, other in self._adj[vertex]:
                if other not in dist:
                    dist[other] = dist[vertex] + 1
                    if dist[other] > far_d:
                        far, far_d = other, dist[other]
                    queue.append(other)
        return far, far_d

    def depth_parity_split(self) -> Tuple[List[int], List[int]]:
        """Split edges by the parity of the *parent* endpoint's depth.

        Each half is a star-forest: the even half has stars centered at
        even-depth vertices, the odd half at odd-depth vertices.  This
        is the classical ``αstar <= 2α`` construction (Corollary 1.2).
        """
        even: List[int] = []
        odd: List[int] = []
        for vertex, eid in self.parent_edge.items():
            if eid is None:
                continue
            parent = self.parent[vertex]
            assert parent is not None
            if self.depth[parent] % 2 == 0:
                even.append(eid)
            else:
                odd.append(eid)
        return even, odd


def forest_components(
    graph: MultiGraph, eids: Sequence[int]
) -> List[List[int]]:
    """Vertex sets of the trees formed by ``eids`` (isolated vertices omitted)."""
    adj: Dict[int, List[int]] = {}
    for eid in eids:
        u, v = graph.endpoints(eid)
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    seen: Set[int] = set()
    out: List[List[int]] = []
    for start in adj:
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for other in adj[vertex]:
                if other not in seen:
                    seen.add(other)
                    comp.append(other)
                    queue.append(other)
        out.append(sorted(comp))
    return out


def is_star_forest(graph: MultiGraph, eids: Sequence[int]) -> bool:
    """True if the edges form vertex-disjoint stars.

    A star is a tree of diameter at most 2 — equivalently no path of
    three edges and no cycle; concretely every edge must have at least
    one endpoint of degree 1 within the edge set, and the set is acyclic.
    """
    if not is_forest(graph, eids):
        return False
    degree: Dict[int, int] = {}
    for eid in eids:
        u, v = graph.endpoints(eid)
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    for eid in eids:
        u, v = graph.endpoints(eid)
        if degree[u] > 1 and degree[v] > 1:
            return False
    return True


def color_classes(coloring: Dict[int, object]) -> Dict[object, List[int]]:
    """Group a (partial) edge coloring into color -> edge id lists."""
    classes: Dict[object, List[int]] = {}
    for eid, color in coloring.items():
        if color is not None:
            classes.setdefault(color, []).append(eid)
    return classes


def max_forest_diameter(graph: MultiGraph, coloring: Dict[int, object]) -> int:
    """Largest strong tree diameter over all color classes of ``coloring``."""
    worst = 0
    for _color, eids in color_classes(coloring).items():
        forest = RootedForest(graph, eids)
        worst = max(worst, forest.max_strong_diameter())
    return worst
