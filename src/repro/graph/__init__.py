"""Graph substrate: multigraphs, the flat-array kernel, traversal,
forests, flow, matching, generators."""

from .multigraph import MultiGraph
from .csr import CSRGraph, PeelingView, rooted_forest_arrays, snapshot_of
from .shard import ShardPlan, ShardedPeelingView, plan_of, resolve_workers
from .union_find import RollbackUnionFind, UnionFind
from .traversal import (
    bfs_distances,
    connected_components,
    diameter_of_component,
    distance_between_sets,
    edge_neighborhood,
    edges_within,
    neighborhood,
    power_graph,
    shortest_path,
    weak_diameter,
)
from .forests import (
    RootedForest,
    color_classes,
    forest_components,
    is_forest,
    is_star_forest,
    max_forest_diameter,
)
from .flow import FlowNetwork
from .matching import greedy_matching, hopcroft_karp, maximum_matching_size

__all__ = [
    "MultiGraph",
    "CSRGraph",
    "PeelingView",
    "ShardPlan",
    "ShardedPeelingView",
    "plan_of",
    "resolve_workers",
    "rooted_forest_arrays",
    "snapshot_of",
    "UnionFind",
    "RollbackUnionFind",
    "bfs_distances",
    "neighborhood",
    "edge_neighborhood",
    "edges_within",
    "power_graph",
    "connected_components",
    "shortest_path",
    "diameter_of_component",
    "weak_diameter",
    "distance_between_sets",
    "RootedForest",
    "is_forest",
    "is_star_forest",
    "forest_components",
    "color_classes",
    "max_forest_diameter",
    "FlowNetwork",
    "hopcroft_karp",
    "maximum_matching_size",
    "greedy_matching",
]
