"""Dinic's maximum-flow algorithm on integer-capacity networks.

Used by the exact pseudoarboricity computation (binary search over
orientations / Goldberg-style density testing) and by tests as an
independent oracle for matchings.  Written from scratch; no external
graph library involved.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..errors import GraphError


class FlowNetwork:
    """A directed flow network with integer capacities.

    Vertices are arbitrary hashables registered on first use.  Arcs are
    stored in an adjacency list of indices into flat arrays (the classic
    paired-residual layout: arc ``i`` and ``i ^ 1`` are residual twins).
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._names: List[object] = []
        self._head: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = []

    def _vertex(self, name: object) -> int:
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)
            self._adj.append([])
        return self._index[name]

    def add_arc(self, source: object, target: object, capacity: int) -> int:
        """Add a directed arc; returns its arc index (for flow queries)."""
        if capacity < 0:
            raise GraphError(f"negative capacity {capacity}")
        u, v = self._vertex(source), self._vertex(target)
        arc = len(self._head)
        self._head.append(v)
        self._cap.append(capacity)
        self._adj[u].append(arc)
        self._head.append(u)
        self._cap.append(0)
        self._adj[v].append(arc + 1)
        return arc

    def max_flow(self, source: object, sink: object) -> int:
        """Compute the maximum ``source``-to-``sink`` flow (Dinic)."""
        if source not in self._index or sink not in self._index:
            return 0
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise GraphError("source equals sink")
        total = 0
        n = len(self._names)
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            next_arc = [0] * n
            while True:
                pushed = self._dfs_push(s, t, float("inf"), level, next_arc)
                if pushed == 0:
                    break
                total += pushed

    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * len(self._names)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] >= 0 else None

    def _dfs_push(
        self, u: int, t: int, limit, level: List[int], next_arc: List[int]
    ) -> int:
        if u == t:
            return int(limit)
        while next_arc[u] < len(self._adj[u]):
            arc = self._adj[u][next_arc[u]]
            v = self._head[arc]
            if self._cap[arc] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs_push(
                    v, t, min(limit, self._cap[arc]), level, next_arc
                )
                if pushed > 0:
                    self._cap[arc] -= pushed
                    self._cap[arc ^ 1] += pushed
                    return pushed
            next_arc[u] += 1
        return 0

    def flow_on(self, arc: int) -> int:
        """Flow currently routed on the arc returned by :meth:`add_arc`."""
        return self._cap[arc ^ 1]

    def min_cut_side(self, source: object) -> Set[object]:
        """Vertices reachable from ``source`` in the residual graph.

        Call after :meth:`max_flow`; the returned set is the source side
        of a minimum cut.
        """
        if source not in self._index:
            return set()
        s = self._index[source]
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return {self._names[i] for i in seen}
