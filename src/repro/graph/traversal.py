"""Traversal utilities: BFS, neighborhoods, power graphs, components.

These implement the locality primitives from Section 1.1 of the paper:
``N^r(v)`` (the r-neighborhood of a vertex), ``N^r(e)`` and ``N^r(X)``
for edges and sets, and the power graph ``G^r`` (vertices adjacent when
their distance in G is at most r).  In the LOCAL model, simulating
``G^r`` costs ``r`` rounds; round accounting for that lives in
:mod:`repro.local.rounds`.

Backend contract
----------------

The hot entry points (:func:`bfs_distances`, :func:`neighborhood`,
:func:`power_graph`, :func:`connected_components`,
:func:`diameter_of_component`) accept either a :class:`MultiGraph` or a
:class:`~repro.graph.csr.CSRGraph` snapshot, plus a ``backend``:

* ``"dict"`` — the original dict-of-sets implementation, preserved as
  the byte-for-byte reference path;
* ``"csr"`` — frontier-array BFS on the flat-array kernel (snapshots of
  a ``MultiGraph`` are cached on the instance, so repeated calls pay
  the conversion once);
* ``"parallel"`` / ``"sharded"`` — the same sweeps routed through the
  shared :class:`~repro.parallel.engine.WaveEngine` (shard-fanned
  frontier gathers + scatter-dedup reconciles) at
  ``n >= PARALLEL_BFS_AUTO_CUTOFF``, ``csr`` below.  Bit-identical
  outputs for every worker count; ``workers`` is purely a throughput
  knob;
* ``"mp"`` — the same wave contract on the process-backed
  :class:`~repro.parallel.engine.MPWaveEngine`: kernels ship as
  shared-memory descriptors and worker processes map the CSR arrays
  zero-copy, which unlocks multi-core on the Python-overhead-bound
  sweeps the GIL caps for threads.  Same gates, same bit-identity;
* ``"auto"`` (default) — ``csr`` for :class:`CSRGraph` inputs and for
  large ``MultiGraph`` inputs, ``dict`` below the size cutoff where
  array setup outweighs the win.  ``power_graph`` is the exception: on
  a ``MultiGraph`` it keeps the dict backend (the return type must stay
  ``MultiGraph`` for existing callers) and returns a CSR power graph
  only for snapshot inputs or an explicit kernel backend.

All backends return identical values (verified across the seeded
corpus in ``tests/test_kernel_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from ..errors import GraphError
from ..parallel.bfs import (
    induced_eccentricity_sweep,
    parallel_bfs_distance_array,
)
from ..parallel.engine import engine_for, engine_for_offsets
from ..parallel.shm import SharedKernel
from .csr import (
    CSRGraph,
    bfs_distance_array,
    resolve_backend,
    snapshot_of,
)
from .multigraph import MultiGraph

GraphLike = Union[MultiGraph, CSRGraph]

#: traversal backends that run on the flat-array kernel ("parallel" and
#: "mp" additionally route frontier waves through the shared wave
#: engine — threads and processes respectively)
_KERNEL = ("csr", "parallel", "mp")

#: the engine-backed subset of _KERNEL
_ENGINE = ("parallel", "mp")


def _resolve_backend(graph: GraphLike, backend: str) -> str:
    return resolve_backend(graph, backend, GraphError)


def bfs_distances(
    graph: GraphLike,
    sources: Iterable[int],
    radius: Optional[int] = None,
    backend: str = "auto",
    workers: int = 0,
) -> Dict[int, int]:
    """Breadth-first distances from a set of sources.

    Returns a dict mapping each reachable vertex to its distance from
    the nearest source; vertices beyond ``radius`` (if given) are omitted.
    """
    resolved = _resolve_backend(graph, backend)
    if resolved in _KERNEL:
        snap = snapshot_of(graph)
        seeds = [snap.index_of(source) for source in sources]
        if resolved in _ENGINE:
            dist = parallel_bfs_distance_array(
                snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices,
                seeds, radius,
                engine_for(snap, workers, mp=resolved == "mp"),
            )
        else:
            dist = snap.distance_array(seeds, radius)
        reached = np.flatnonzero(dist >= 0)
        return dict(
            zip(snap.vertex_ids[reached].tolist(), dist[reached].tolist())
        )
    dist_map: Dict[int, int] = {}
    queue: deque = deque()
    for source in sources:
        if not graph.has_vertex(source):
            raise GraphError(f"source vertex {source} does not exist")
        if source not in dist_map:
            dist_map[source] = 0
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        d = dist_map[vertex]
        if radius is not None and d >= radius:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in dist_map:
                dist_map[neighbor] = d + 1
                queue.append(neighbor)
    return dist_map


def neighborhood(
    graph: GraphLike,
    sources: Iterable[int],
    radius: int,
    backend: str = "auto",
) -> Set[int]:
    """``N^r(X)``: vertices within distance ``radius`` of any source vertex."""
    if _resolve_backend(graph, backend) in _KERNEL:
        snap = snapshot_of(graph)
        return snap.neighborhood_set(sources, radius)
    return set(bfs_distances(graph, sources, radius, backend="dict").keys())


def edge_neighborhood(
    graph: GraphLike, eid: int, radius: int, backend: str = "auto"
) -> Set[int]:
    """``N^r(e)``: vertices within distance ``radius`` of either endpoint."""
    u, v = graph.endpoints(eid)
    return neighborhood(graph, (u, v), radius, backend=backend)


def edges_within(graph: MultiGraph, vertices: Set[int]) -> List[int]:
    """Edge ids with both endpoints inside ``vertices`` (``E(X)`` in the paper)."""
    out = []
    for eid, u, v in graph.edges():
        if u in vertices and v in vertices:
            out.append(eid)
    return out


def power_graph(
    graph: GraphLike, radius: int, backend: str = "auto"
) -> GraphLike:
    """The power graph ``G^r``: simple graph joining vertices at distance <= r.

    ``G^1`` is the simplification of ``G`` (parallel edges collapsed).

    The return type follows the backend: the dict reference path builds
    a :class:`MultiGraph`; the csr path assembles a
    :class:`~repro.graph.csr.CSRGraph` snapshot directly from the
    frontier sweeps (the network-decomposition machinery consumes
    either).  ``backend="auto"`` keeps the input's representation.
    """
    if backend == "auto":
        backend = "csr" if isinstance(graph, CSRGraph) else "dict"
    if _resolve_backend(graph, backend) in _KERNEL:
        if radius < 1:
            raise GraphError(f"power graph radius must be >= 1, got {radius}")
        return snapshot_of(graph).power_csr(radius)
    if radius < 1:
        raise GraphError(f"power graph radius must be >= 1, got {radius}")
    power = MultiGraph()
    for vertex in graph.vertices():
        power.add_vertex(vertex)
    for vertex in graph.vertices():
        dist = bfs_distances(graph, (vertex,), radius, backend="dict")
        for other in dist:
            if other > vertex:
                power.add_edge(vertex, other)
    return power


def connected_components(
    graph: GraphLike, backend: str = "auto"
) -> List[List[int]]:
    """Connected components as lists of vertices (deterministic order)."""
    if _resolve_backend(graph, backend) in _KERNEL:
        snap = snapshot_of(graph)
        labels = snap.component_labels()
        if labels.size == 0:
            return []
        order = np.argsort(labels, kind="stable")
        boundaries = np.flatnonzero(np.diff(labels[order])) + 1
        # Labels converge to each component's minimum dense index, and
        # dense indices follow insertion order — so ascending labels
        # reproduce the reference's first-seen component order.
        return [
            sorted(snap.vertex_ids[group].tolist())
            for group in np.split(order, boundaries)
        ]
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = sorted(bfs_distances(graph, (start,), backend="dict").keys())
        seen.update(component)
        components.append(component)
    return components


def components_of_vertices(
    graph: MultiGraph, vertices: Sequence[int]
) -> List[List[int]]:
    """Connected components of the subgraph induced by ``vertices``."""
    keep = set(vertices)
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in vertices:
        if start in seen:
            continue
        comp: List[int] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            vertex = queue.popleft()
            comp.append(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in keep and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(sorted(comp))
    return components


def shortest_path(
    graph: MultiGraph, source: int, target: int
) -> Optional[List[int]]:
    """A shortest vertex path from ``source`` to ``target`` or None."""
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in parent:
                parent[neighbor] = vertex
                if neighbor == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbor)
    return None


def eccentricity(graph: MultiGraph, vertex: int) -> int:
    """Maximum distance from ``vertex`` to any reachable vertex."""
    dist = bfs_distances(graph, (vertex,))
    return max(dist.values())


def diameter_of_component(
    graph: GraphLike,
    vertices: Sequence[int],
    backend: str = "auto",
    workers: int = 0,
) -> int:
    """Exact strong diameter of the subgraph induced by ``vertices``.

    Runs a BFS from every vertex of the component, so it is quadratic —
    fine for the cluster sizes the validators and benches inspect.  The
    csr path extracts the induced sub-CSR once, then sweeps it with
    frontier-array BFS per source; the parallel path chunks the
    sources across the wave engine's workers (the per-source max is
    order-free, so the result is identical).  Disconnected input
    raises :class:`GraphError`.
    """
    resolved = _resolve_backend(graph, backend)
    if resolved in _KERNEL:
        if not vertices:
            return 0
        snap = snapshot_of(graph)
        members = np.unique(
            np.fromiter(
                (snap.index_of(v) for v in vertices),
                dtype=np.int64,
                count=len(vertices),
            )
        )
        # One compacted sub-CSR over the members, then a k-local BFS per
        # source: cluster-sized work, independent of the host graph.
        offsets, nbr = snap.induced_sub_csr(members)
        k = int(members.size)
        if resolved in _ENGINE:
            engine = engine_for_offsets(
                offsets, workers, mp=resolved == "mp"
            )
            best, connected = induced_eccentricity_sweep(
                offsets, nbr, k, engine
            )
            if not connected:
                raise GraphError(
                    "diameter_of_component: vertex set is disconnected"
                )
            return best
        best = 0
        for start in range(k):
            dist = bfs_distance_array(offsets, nbr, k, [start])
            eccentricity_ = int(dist.max())
            if int((dist >= 0).sum()) != k:
                raise GraphError(
                    "diameter_of_component: vertex set is disconnected"
                )
            best = max(best, eccentricity_)
        return best
    keep = set(vertices)
    best = 0
    for start in vertices:
        dist: Dict[int, int] = {start: 0}
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for neighbor in graph.neighbors(v):
                if neighbor in keep and neighbor not in dist:
                    dist[neighbor] = dist[v] + 1
                    queue.append(neighbor)
        if len(dist) != len(keep):
            raise GraphError("diameter_of_component: vertex set is disconnected")
        best = max(best, max(dist.values()))
    return best


def weak_diameter(
    graph: GraphLike,
    vertices: Sequence[int],
    backend: str = "auto",
    workers: int = 0,
) -> int:
    """Weak diameter: max distance *in the whole graph* between members.

    The kernel path runs one whole-graph BFS per member over the flat
    arrays; the parallel path chunks the members across the wave
    engine's workers (the pairwise max is order-free).  Distances in a
    graph are unique, so every backend returns the same value.
    """
    resolved = _resolve_backend(graph, backend)
    if resolved in _KERNEL:
        if not vertices:
            return 0
        snap = snapshot_of(graph)
        members = np.fromiter(
            (snap.index_of(v) for v in vertices),
            dtype=np.int64,
            count=len(vertices),
        )
        offsets, nbr = snap.vertex_offsets, snap.neighbor_ids
        n = snap.num_vertices
        engine = (
            engine_for(snap, workers, mp=resolved == "mp")
            if resolved in _ENGINE
            else None
        )

        if engine is None:
            results = [
                _weak_diameter_block(offsets, nbr, members, n, 0,
                                     int(members.size))
            ]
        elif engine.mp:
            fn = SharedKernel(
                _mp_weak_diameter_block,
                {"offsets": offsets, "neighbors": nbr, "members": members},
                args=(n,),
            )
            results = engine.map_ranges(
                fn, int(members.size), cost=int(members.size) * n
            )
        else:

            def block(lo: int, hi: int):
                return _weak_diameter_block(offsets, nbr, members, n, lo, hi)

            # Every member's sweep walks the whole graph (n vertices).
            results = engine.map_ranges(
                block, int(members.size), cost=int(members.size) * n
            )
        if not all(ok for _best, ok in results):
            raise GraphError("weak_diameter: vertices not mutually reachable")
        return max((best for best, _ok in results), default=0)
    best = 0
    members = sorted(set(vertices))
    for start in vertices:
        dist = bfs_distances(graph, (start,), backend="dict")
        for other in members:
            if other not in dist:
                raise GraphError("weak_diameter: vertices not mutually reachable")
            best = max(best, dist[other])
    return best


def _weak_diameter_block(
    offsets: np.ndarray,
    nbr: np.ndarray,
    members: np.ndarray,
    n: int,
    lo: int,
    hi: int,
):
    """One member block of the weak-diameter sweep: a whole-graph BFS
    per member, early exit on the first unreachable pair."""
    best_local = 0
    for position in range(lo, hi):
        dist = parallel_bfs_distance_array(
            offsets, nbr, n, [int(members[position])]
        )
        to_members = dist[members]
        if int(to_members.min()) < 0:
            return best_local, False
        best_local = max(best_local, int(to_members.max()))
    return best_local, True


def _mp_weak_diameter_block(arrays, part, n):
    """Shared-kernel twin of the weak-diameter member block."""
    lo, hi = part
    return _weak_diameter_block(
        arrays["offsets"], arrays["neighbors"], arrays["members"], n, lo, hi
    )


def distance_between_sets(
    graph: MultiGraph, a: Iterable[int], b: Iterable[int]
) -> Optional[int]:
    """Shortest distance between any vertex of ``a`` and any of ``b``."""
    target = set(b)
    dist = bfs_distances(graph, a)
    hits = [d for v, d in dist.items() if v in target]
    return min(hits) if hits else None


def spanning_tree_edges(graph: MultiGraph, vertices: Sequence[int]) -> List[int]:
    """Edges of an arbitrary BFS spanning forest of the induced subgraph."""
    keep = set(vertices)
    seen: Set[int] = set()
    tree_edges: List[int] = []
    for start in vertices:
        if start in seen:
            continue
        seen.add(start)
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for eid, other in graph.incident(vertex):
                if other in keep and other not in seen:
                    seen.add(other)
                    tree_edges.append(eid)
                    queue.append(other)
    return tree_edges
