"""Edge-list serialization for graphs, palettes and colorings.

Formats (all plain text, comment lines start with ``#``):

* graph: first non-comment line ``n <vertices>``; then one ``u v`` pair
  per line (parallel edges = repeated lines; edge ids are assigned in
  file order, so colorings round-trip);
* SNAP-style graph: no header — just ``u v`` (or ``u v w``; weights
  are ignored) pairs, tabs or spaces, ``#`` comment lines skipped.
  Vertices are ``0..max id`` (gaps become isolated vertices);
* coloring: ``<edge id> <color>`` per line;
* palettes: ``<edge id> c1 c2 c3 ...`` per line.

:func:`read_edge_list` accepts both graph formats and returns a
:class:`MultiGraph`; :func:`iter_edge_chunks` streams either format as
``(k, 2)`` index arrays without ever holding the file in memory — the
front end of the out-of-core ``CSRGraph.from_edge_iter`` ingest.

Structured results additionally round-trip as JSON
(:func:`write_result_json` / :func:`read_result_json`), carrying the
full uniform-result payload — kind, coloring, stats, config — instead
of the lossy text coloring.

These back the ``python -m repro`` command-line tool and let users run
the decompositions on their own graphs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, TextIO, Tuple, Union

from ..errors import GraphError
from .multigraph import MultiGraph

PathOrIO = Union[str, TextIO]


def _open_for(target: PathOrIO, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_edge_list(graph: MultiGraph, target: PathOrIO) -> None:
    """Serialize a multigraph as an edge list."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write(f"# repro edge list: n={graph.n} m={graph.m}\n")
        handle.write(f"n {graph.n}\n")
        for _eid, u, v in graph.edges():
            handle.write(f"{u} {v}\n")
    finally:
        if owned:
            handle.close()


def _parse_edge(parts: List[str], line_number: int) -> Tuple[int, int]:
    """One SNAP-style edge line: ``u v`` or ``u v weight`` (weight
    ignored)."""
    if len(parts) not in (2, 3):
        raise GraphError(
            f"line {line_number}: expected 'u v [weight]', "
            f"got {' '.join(parts)!r}"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise GraphError(
            f"line {line_number}: endpoints must be integers, "
            f"got {' '.join(parts)!r}"
        ) from None


def read_edge_list(source: PathOrIO) -> MultiGraph:
    """Parse a multigraph from an edge list (see module docstring).

    Both graph formats are accepted: the native one (``n <count>``
    header, then ``u v`` pairs) and headerless SNAP-style files (``u v``
    or ``u v weight`` per line, weights ignored, ``#`` comments
    skipped, vertex set ``0..max id``).  Edge ids are assigned in file
    order in both.
    """
    handle, owned = _open_for(source, "r")
    try:
        graph: MultiGraph = MultiGraph()
        saw_header = False
        saw_edges = False
        snap_edges: List[Tuple[int, int]] = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if not saw_header and not saw_edges:
                if parts[0] == "n":
                    if len(parts) != 2:
                        raise GraphError(
                            f"line {line_number}: expected 'n <count>' "
                            f"header, got {line!r}"
                        )
                    graph = MultiGraph.with_vertices(int(parts[1]))
                    saw_header = True
                    continue
                saw_edges = True  # headerless SNAP stream
            u, v = _parse_edge(parts, line_number)
            saw_edges = True
            if saw_header:
                if len(parts) != 2:
                    raise GraphError(
                        f"line {line_number}: expected 'u v', got {line!r}"
                    )
                graph.add_edge(u, v)
            else:
                snap_edges.append((u, v))
        if not saw_header:
            if not saw_edges:
                raise GraphError(
                    "edge list has no 'n <count>' header and no edges"
                )
            top = max(max(u, v) for u, v in snap_edges)
            if min(min(u, v) for u, v in snap_edges) < 0:
                raise GraphError("edge endpoints must be nonnegative")
            graph = MultiGraph.with_vertices(top + 1)
            for u, v in snap_edges:
                graph.add_edge(u, v)
        return graph
    finally:
        if owned:
            handle.close()


def iter_edge_chunks(source: PathOrIO, chunk_edges: int = 1 << 20):
    """Stream an edge-list / SNAP file as ``(k, 2)`` int64 arrays.

    Accepts the same two formats as :func:`read_edge_list` (an
    ``n <count>`` header line, when present, is skipped — the chunked
    CSR ingest infers or receives ``n`` itself) and never holds more
    than ``chunk_edges`` edges in memory, which is what lets
    ``CSRGraph.from_edge_iter(path, mmap_dir=...)`` ingest 10^7+-edge
    files out-of-core.
    """
    import numpy as np

    handle, owned = _open_for(source, "r")
    try:
        buffer: List[Tuple[int, int]] = []
        first = True
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if first:
                first = False
                if parts[0] == "n" and len(parts) == 2:
                    continue
            buffer.append(_parse_edge(parts, line_number))
            if len(buffer) >= chunk_edges:
                yield np.asarray(buffer, dtype=np.int64)
                buffer = []
        if buffer:
            yield np.asarray(buffer, dtype=np.int64)
    finally:
        if owned:
            handle.close()


def write_coloring(coloring: Dict[int, object], target: PathOrIO) -> None:
    """Serialize an edge coloring (colors stringified with str())."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write("# repro coloring: <edge id> <color>\n")
        for eid in sorted(coloring):
            handle.write(f"{eid} {coloring[eid]}\n")
    finally:
        if owned:
            handle.close()


def read_coloring(source: PathOrIO) -> Dict[int, str]:
    """Parse a coloring; colors come back as strings."""
    handle, owned = _open_for(source, "r")
    try:
        coloring: Dict[int, str] = {}
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(maxsplit=1)
            if len(parts) != 2:
                raise GraphError(
                    f"line {line_number}: expected '<edge id> <color>'"
                )
            coloring[int(parts[0])] = parts[1]
        return coloring
    finally:
        if owned:
            handle.close()


def write_palettes(palettes: Dict[int, Sequence[int]], target: PathOrIO) -> None:
    """Serialize per-edge palettes."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write("# repro palettes: <edge id> c1 c2 ...\n")
        for eid in sorted(palettes):
            colors = " ".join(str(c) for c in palettes[eid])
            handle.write(f"{eid} {colors}\n")
    finally:
        if owned:
            handle.close()


def write_result_json(result, target: PathOrIO) -> None:
    """Serialize a uniform-protocol decomposition result as JSON.

    ``result`` is any :class:`~repro.core.results.DecompositionResult`
    (whatever :func:`repro.decompose` returned); the payload is
    ``result.to_json()``, so colors, stats, round accounting and the
    producing config all survive.
    """
    handle, owned = _open_for(target, "w")
    try:
        json.dump(result.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    finally:
        if owned:
            handle.close()


def read_result_json(source: PathOrIO, graph: "MultiGraph" = None):
    """Rebuild a decomposition result written by
    :func:`write_result_json`; bind ``graph`` to re-enable
    ``validate()`` / ``coloring_array()``."""
    # imported lazily: core depends on the graph layer, not vice versa
    from ..core.results import DecompositionResult

    handle, owned = _open_for(source, "r")
    try:
        payload = json.load(handle)
    finally:
        if owned:
            handle.close()
    return DecompositionResult.from_json(payload, graph=graph)


def read_palettes(source: PathOrIO) -> Dict[int, List[int]]:
    """Parse per-edge palettes of integer colors."""
    handle, owned = _open_for(source, "r")
    try:
        palettes: Dict[int, List[int]] = {}
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"line {line_number}: expected '<edge id> c1 [c2 ...]'"
                )
            palettes[int(parts[0])] = [int(c) for c in parts[1:]]
        return palettes
    finally:
        if owned:
            handle.close()
