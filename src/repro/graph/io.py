"""Edge-list serialization for graphs, palettes and colorings.

Formats (all plain text, comment lines start with ``#``):

* graph: first non-comment line ``n <vertices>``; then one ``u v`` pair
  per line (parallel edges = repeated lines; edge ids are assigned in
  file order, so colorings round-trip);
* coloring: ``<edge id> <color>`` per line;
* palettes: ``<edge id> c1 c2 c3 ...`` per line.

Structured results additionally round-trip as JSON
(:func:`write_result_json` / :func:`read_result_json`), carrying the
full uniform-result payload — kind, coloring, stats, config — instead
of the lossy text coloring.

These back the ``python -m repro`` command-line tool and let users run
the decompositions on their own graphs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, TextIO, Tuple, Union

from ..errors import GraphError
from .multigraph import MultiGraph

PathOrIO = Union[str, TextIO]


def _open_for(target: PathOrIO, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_edge_list(graph: MultiGraph, target: PathOrIO) -> None:
    """Serialize a multigraph as an edge list."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write(f"# repro edge list: n={graph.n} m={graph.m}\n")
        handle.write(f"n {graph.n}\n")
        for _eid, u, v in graph.edges():
            handle.write(f"{u} {v}\n")
    finally:
        if owned:
            handle.close()


def read_edge_list(source: PathOrIO) -> MultiGraph:
    """Parse a multigraph from an edge list (see module docstring)."""
    handle, owned = _open_for(source, "r")
    try:
        graph: MultiGraph = MultiGraph()
        saw_header = False
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if not saw_header:
                if parts[0] != "n" or len(parts) != 2:
                    raise GraphError(
                        f"line {line_number}: expected 'n <count>' header, "
                        f"got {line!r}"
                    )
                graph = MultiGraph.with_vertices(int(parts[1]))
                saw_header = True
                continue
            if len(parts) != 2:
                raise GraphError(
                    f"line {line_number}: expected 'u v', got {line!r}"
                )
            graph.add_edge(int(parts[0]), int(parts[1]))
        if not saw_header:
            raise GraphError("edge list has no 'n <count>' header")
        return graph
    finally:
        if owned:
            handle.close()


def write_coloring(coloring: Dict[int, object], target: PathOrIO) -> None:
    """Serialize an edge coloring (colors stringified with str())."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write("# repro coloring: <edge id> <color>\n")
        for eid in sorted(coloring):
            handle.write(f"{eid} {coloring[eid]}\n")
    finally:
        if owned:
            handle.close()


def read_coloring(source: PathOrIO) -> Dict[int, str]:
    """Parse a coloring; colors come back as strings."""
    handle, owned = _open_for(source, "r")
    try:
        coloring: Dict[int, str] = {}
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(maxsplit=1)
            if len(parts) != 2:
                raise GraphError(
                    f"line {line_number}: expected '<edge id> <color>'"
                )
            coloring[int(parts[0])] = parts[1]
        return coloring
    finally:
        if owned:
            handle.close()


def write_palettes(palettes: Dict[int, Sequence[int]], target: PathOrIO) -> None:
    """Serialize per-edge palettes."""
    handle, owned = _open_for(target, "w")
    try:
        handle.write("# repro palettes: <edge id> c1 c2 ...\n")
        for eid in sorted(palettes):
            colors = " ".join(str(c) for c in palettes[eid])
            handle.write(f"{eid} {colors}\n")
    finally:
        if owned:
            handle.close()


def write_result_json(result, target: PathOrIO) -> None:
    """Serialize a uniform-protocol decomposition result as JSON.

    ``result`` is any :class:`~repro.core.results.DecompositionResult`
    (whatever :func:`repro.decompose` returned); the payload is
    ``result.to_json()``, so colors, stats, round accounting and the
    producing config all survive.
    """
    handle, owned = _open_for(target, "w")
    try:
        json.dump(result.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    finally:
        if owned:
            handle.close()


def read_result_json(source: PathOrIO, graph: "MultiGraph" = None):
    """Rebuild a decomposition result written by
    :func:`write_result_json`; bind ``graph`` to re-enable
    ``validate()`` / ``coloring_array()``."""
    # imported lazily: core depends on the graph layer, not vice versa
    from ..core.results import DecompositionResult

    handle, owned = _open_for(source, "r")
    try:
        payload = json.load(handle)
    finally:
        if owned:
            handle.close()
    return DecompositionResult.from_json(payload, graph=graph)


def read_palettes(source: PathOrIO) -> Dict[int, List[int]]:
    """Parse per-edge palettes of integer colors."""
    handle, owned = _open_for(source, "r")
    try:
        palettes: Dict[int, List[int]] = {}
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"line {line_number}: expected '<edge id> c1 [c2 ...]'"
                )
            palettes[int(parts[0])] = [int(c) for c in parts[1:]]
        return palettes
    finally:
        if owned:
            handle.close()
