"""Multigraph data structure with stable edge identifiers.

This is the substrate every algorithm in the library runs on.  Design
goals, in order:

* **Parallel edges are first-class.**  Nash-Williams arboricity and the
  paper's multigraph results (Theorems 4.5/4.6, Proposition C.1) need
  distinct identities for parallel edges, so every edge has an integer
  id and all colorings are maps ``edge id -> color``.
* **Stable ids under subgraph operations.**  CUT removes edges, the
  augmenting search explores neighborhoods, and the final recoloring
  stitches edge sets back together — all of this is only sane if an
  edge keeps its id across views.  Subgraphs therefore preserve ids.
* **Deterministic iteration.**  Vertices and edges iterate in insertion
  order so seeded runs are reproducible.

Self-loops are rejected: a self-loop can never be in a forest, so no
forest decomposition exists for a graph containing one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import GraphError

Edge = Tuple[int, int, int]  # (edge id, endpoint u, endpoint v)


class MultiGraph:
    """An undirected multigraph on integer vertices with integer edge ids."""

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, Set[int]]] = {}
        self._edges: Dict[int, Tuple[int, int]] = {}
        self._next_vertex = 0
        self._next_edge = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def with_vertices(cls, n: int) -> "MultiGraph":
        """Create a graph with vertices ``0..n-1`` and no edges."""
        graph = cls()
        for _ in range(n):
            graph.add_vertex()
        return graph

    @classmethod
    def from_edges(cls, n: int, pairs: Iterable[Tuple[int, int]]) -> "MultiGraph":
        """Create a graph on ``n`` vertices from (u, v) pairs."""
        graph = cls.with_vertices(n)
        for u, v in pairs:
            graph.add_edge(u, v)
        return graph

    def add_vertex(self, vertex: Optional[int] = None) -> int:
        """Add a vertex (auto-numbered if ``vertex`` is None) and return it."""
        if vertex is None:
            vertex = self._next_vertex
        if vertex in self._adj:
            raise GraphError(f"vertex {vertex} already exists")
        self._adj[vertex] = {}
        self._next_vertex = max(self._next_vertex, vertex + 1)
        return vertex

    def add_edge(self, u: int, v: int) -> int:
        """Add an undirected edge between ``u`` and ``v``; return its id."""
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        for vertex in (u, v):
            if vertex not in self._adj:
                raise GraphError(f"vertex {vertex} does not exist")
        eid = self._next_edge
        self._next_edge += 1
        self._edges[eid] = (u, v)
        self._adj[u].setdefault(v, set()).add(eid)
        self._adj[v].setdefault(u, set()).add(eid)
        return eid

    def remove_edge(self, eid: int) -> None:
        """Remove the edge with id ``eid``."""
        try:
            u, v = self._edges.pop(eid)
        except KeyError:
            raise GraphError(f"edge {eid} does not exist") from None
        self._adj[u][v].discard(eid)
        if not self._adj[u][v]:
            del self._adj[u][v]
        self._adj[v][u].discard(eid)
        if not self._adj[v][u]:
            del self._adj[v][u]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges (counting multiplicities)."""
        return len(self._edges)

    def vertices(self) -> List[int]:
        """All vertices, in insertion order."""
        return list(self._adj.keys())

    def edge_ids(self) -> List[int]:
        """All edge ids, in insertion order."""
        return list(self._edges.keys())

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(eid, u, v)`` triples."""
        for eid, (u, v) in self._edges.items():
            yield (eid, u, v)

    def has_vertex(self, vertex: int) -> bool:
        return vertex in self._adj

    def has_edge(self, eid: int) -> bool:
        return eid in self._edges

    def endpoints(self, eid: int) -> Tuple[int, int]:
        """Return ``(u, v)`` for edge ``eid``."""
        try:
            return self._edges[eid]
        except KeyError:
            raise GraphError(f"edge {eid} does not exist") from None

    def other_endpoint(self, eid: int, vertex: int) -> int:
        """Return the endpoint of ``eid`` that is not ``vertex``."""
        u, v = self.endpoints(eid)
        if vertex == u:
            return v
        if vertex == v:
            return u
        raise GraphError(f"vertex {vertex} is not an endpoint of edge {eid}")

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex`` counting parallel edges."""
        return sum(len(eids) for eids in self._adj[vertex].values())

    def max_degree(self) -> int:
        """Maximum degree over all vertices (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(self.degree(v) for v in self._adj)

    def neighbors(self, vertex: int) -> List[int]:
        """Distinct neighboring vertices of ``vertex``."""
        if vertex not in self._adj:
            raise GraphError(f"vertex {vertex} does not exist")
        return list(self._adj[vertex].keys())

    def incident_edges(self, vertex: int) -> List[int]:
        """Ids of all edges incident to ``vertex``."""
        if vertex not in self._adj:
            raise GraphError(f"vertex {vertex} does not exist")
        out: List[int] = []
        for eids in self._adj[vertex].values():
            out.extend(eids)
        return out

    def incident(self, vertex: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(eid, other endpoint)`` pairs at ``vertex``."""
        if vertex not in self._adj:
            raise GraphError(f"vertex {vertex} does not exist")
        for other, eids in self._adj[vertex].items():
            for eid in eids:
                yield (eid, other)

    def edges_between(self, u: int, v: int) -> List[int]:
        """All edge ids between ``u`` and ``v`` (empty if none)."""
        return sorted(self._adj.get(u, {}).get(v, ()))

    def multiplicity(self, u: int, v: int) -> int:
        """Number of parallel edges between ``u`` and ``v``."""
        return len(self._adj.get(u, {}).get(v, ()))

    def is_simple(self) -> bool:
        """True if no pair of vertices has parallel edges."""
        return all(
            len(eids) <= 1 for nbrs in self._adj.values() for eids in nbrs.values()
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def copy(self) -> "MultiGraph":
        """Deep copy preserving vertex numbers and edge ids."""
        clone = MultiGraph()
        for vertex in self._adj:
            clone.add_vertex(vertex)
        for eid, (u, v) in self._edges.items():
            clone._edges[eid] = (u, v)
            clone._adj[u].setdefault(v, set()).add(eid)
            clone._adj[v].setdefault(u, set()).add(eid)
        clone._next_edge = self._next_edge
        clone._next_vertex = self._next_vertex
        return clone

    def edge_subgraph(self, eids: Iterable[int]) -> "MultiGraph":
        """Subgraph on the given edges (and all original vertices).

        Edge ids are preserved, so colorings transfer between the
        subgraph and the parent without translation.
        """
        sub = MultiGraph()
        for vertex in self._adj:
            sub.add_vertex(vertex)
        for eid in eids:
            u, v = self.endpoints(eid)
            sub._edges[eid] = (u, v)
            sub._adj[u].setdefault(v, set()).add(eid)
            sub._adj[v].setdefault(u, set()).add(eid)
        sub._next_edge = self._next_edge
        sub._next_vertex = self._next_vertex
        return sub

    def induced_subgraph(self, vertices: Iterable[int]) -> "MultiGraph":
        """Subgraph induced by ``vertices`` (ids preserved; only those vertices)."""
        keep = set(vertices)
        sub = MultiGraph()
        for vertex in self._adj:
            if vertex in keep:
                sub.add_vertex(vertex)
        for eid, (u, v) in self._edges.items():
            if u in keep and v in keep:
                sub._edges[eid] = (u, v)
                sub._adj[u].setdefault(v, set()).add(eid)
                sub._adj[v].setdefault(u, set()).add(eid)
        sub._next_edge = self._next_edge
        sub._next_vertex = self._next_vertex
        return sub

    def without_edges(self, eids: Iterable[int]) -> "MultiGraph":
        """Copy of the graph with the given edges removed."""
        drop = set(eids)
        return self.edge_subgraph(eid for eid in self._edges if eid not in drop)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"MultiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiGraph):
            return NotImplemented
        return (
            set(self._adj.keys()) == set(other._adj.keys())
            and self._edges == other._edges
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("MultiGraph is mutable and unhashable")
