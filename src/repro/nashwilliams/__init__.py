"""Exact (centralized) Nash-Williams substrate: ground truth algorithms."""

from .arboricity import (
    densest_induced_density,
    exact_arboricity,
    exact_forest_decomposition,
    nash_williams_density_exact,
    whole_graph_density_lower_bound,
)
from .matroid_partition import MatroidPartitionResult, exact_forest_partition
from .pseudoarboricity import (
    exact_pseudoarboricity,
    exact_pseudoarboricity_with_orientation,
    orientation_exists,
    out_degrees,
    pseudoforest_decomposition_from_orientation,
)
from .star_arboricity import (
    exact_star_arboricity,
    star_arboricity_bounds,
    star_forest_partition_exists,
)

__all__ = [
    "exact_arboricity",
    "exact_forest_decomposition",
    "exact_forest_partition",
    "MatroidPartitionResult",
    "nash_williams_density_exact",
    "densest_induced_density",
    "whole_graph_density_lower_bound",
    "exact_pseudoarboricity",
    "exact_pseudoarboricity_with_orientation",
    "orientation_exists",
    "out_degrees",
    "pseudoforest_decomposition_from_orientation",
    "exact_star_arboricity",
    "star_arboricity_bounds",
    "star_forest_partition_exists",
]
