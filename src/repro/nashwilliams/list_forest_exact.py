"""Exact list-forest decomposition by backtracking (tiny graphs).

Seymour [Sey98] proved that α(G)-list-forest decompositions exist for
*any* palettes of size α — the combinatorial fact that makes the
paper's (1+ε)α-LFD targets sensible.  This module provides a
backtracking solver used as ground truth: benches and property tests
verify Seymour's theorem empirically on random tiny instances, and use
it to check that the augmentation framework never reports failure when
a decomposition exists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from ..graph.multigraph import MultiGraph
from ..graph.union_find import RollbackUnionFind

Palettes = Dict[int, Sequence[int]]


def exact_list_forest_decomposition(
    graph: MultiGraph,
    palettes: Palettes,
    max_edges: int = 24,
) -> Optional[Dict[int, int]]:
    """A full list-forest coloring respecting ``palettes``, or None.

    Exponential-time backtracking with per-color union-find rollback;
    refuses instances above ``max_edges`` edges.  Edges are tried in a
    most-constrained-first order (smallest palette first).
    """
    if graph.m > max_edges:
        raise GraphError(
            f"exact list-FD limited to m <= {max_edges}, got {graph.m}"
        )
    order = sorted(graph.edge_ids(), key=lambda e: (len(palettes[e]), e))
    forests: Dict[int, RollbackUnionFind] = {}
    assignment: Dict[int, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        eid = order[index]
        u, v = graph.endpoints(eid)
        for color in palettes[eid]:
            forest = forests.setdefault(color, RollbackUnionFind())
            if forest.connected(u, v):
                continue
            mark = forest.checkpoint()
            forest.union(u, v)
            assignment[eid] = color
            if backtrack(index + 1):
                return True
            forest.rollback(mark)
            del assignment[eid]
        return False

    return dict(assignment) if backtrack(0) else None


def seymour_holds(
    graph: MultiGraph, palettes: Palettes, alpha: int, max_edges: int = 24
) -> bool:
    """Check Seymour's theorem on one instance: if every palette has at
    least ``alpha`` colors, an α-LFD must exist."""
    if any(len(palettes[eid]) < alpha for eid in graph.edge_ids()):
        raise GraphError("palettes smaller than alpha; Seymour does not apply")
    return exact_list_forest_decomposition(graph, palettes, max_edges) is not None
