"""Exact pseudoarboricity via max-flow orientation testing.

A graph decomposes into ``k`` pseudoforests iff its edges can be
oriented with maximum out-degree ``k`` (the paper's "k-orientation",
Section 1).  Feasibility of a ``k``-orientation is a bipartite flow
problem [PQ82]:

    source -> each edge node (capacity 1)
    edge node -> each of its two endpoints (capacity 1)
    vertex -> sink (capacity k)

All ``m`` units route iff a k-orientation exists.  Binary searching k
gives the exact pseudoarboricity α*(G), together with a witness
orientation extracted from the flow.  Tests cross-check against
``⌈α/2⌉ <= α* <= α`` and against exact densities on tiny graphs.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..errors import GraphError
from ..graph.flow import FlowNetwork
from ..graph.multigraph import MultiGraph

Orientation = Dict[int, int]  # edge id -> tail vertex (edge points away)


def orientation_exists(graph: MultiGraph, k: int) -> Optional[Orientation]:
    """A max out-degree-``k`` orientation, or None if impossible.

    The returned dict maps each edge id to the endpoint that the edge
    leaves (its tail); out-degree of v = #{edges with tail v} <= k.
    """
    if k < 0:
        raise GraphError("orientation bound must be non-negative")
    if graph.m == 0:
        return {}
    net = FlowNetwork()
    edge_arcs: Dict[int, Tuple[int, int]] = {}
    for eid, u, v in graph.edges():
        net.add_arc("s", ("e", eid), 1)
        arc_u = net.add_arc(("e", eid), ("v", u), 1)
        arc_v = net.add_arc(("e", eid), ("v", v), 1)
        edge_arcs[eid] = (arc_u, arc_v)
    for vertex in graph.vertices():
        net.add_arc(("v", vertex), "t", k)
    if net.max_flow("s", "t") < graph.m:
        return None
    orientation: Orientation = {}
    for eid, (arc_u, arc_v) in edge_arcs.items():
        u, v = graph.endpoints(eid)
        orientation[eid] = u if net.flow_on(arc_u) == 1 else v
    return orientation


def exact_pseudoarboricity(graph: MultiGraph) -> int:
    """The exact pseudoarboricity α*(G) (0 for edgeless graphs)."""
    value, _ = exact_pseudoarboricity_with_orientation(graph)
    return value


def exact_pseudoarboricity_with_orientation(
    graph: MultiGraph,
) -> Tuple[int, Orientation]:
    """(α*(G), witness α*-orientation)."""
    if graph.m == 0:
        return 0, {}
    low = max(1, math.ceil(graph.m / graph.n))
    high = graph.max_degree()
    best: Optional[Orientation] = None
    # Tighten low: density lower bound max over whole graph only; binary
    # search still correct since orientation_exists is monotone in k.
    while low < high:
        mid = (low + high) // 2
        witness = orientation_exists(graph, mid)
        if witness is None:
            low = mid + 1
        else:
            high = mid
            best = witness
    if best is None:
        best = orientation_exists(graph, low)
        if best is None:
            raise GraphError("no orientation found at maximum degree bound")
    return low, best


def out_degrees(graph: MultiGraph, orientation: Orientation) -> Dict[int, int]:
    """Out-degree profile of an orientation (vertices with 0 included)."""
    degrees = {v: 0 for v in graph.vertices()}
    for _eid, tail in orientation.items():
        degrees[tail] += 1
    return degrees


def pseudoforest_decomposition_from_orientation(
    graph: MultiGraph, orientation: Orientation
) -> Dict[int, int]:
    """Split edges into pseudoforests by ranking each vertex's out-edges.

    If every vertex has out-degree <= k, assigning each vertex's
    out-edges distinct indices 0..k-1 makes each index class a
    functional graph (<= 1 out-edge per vertex) — a pseudoforest.
    """
    next_index: Dict[int, int] = {}
    coloring: Dict[int, int] = {}
    for eid in sorted(orientation):
        tail = orientation[eid]
        index = next_index.get(tail, 0)
        coloring[eid] = index
        next_index[tail] = index + 1
    return coloring
