"""Exact forest decomposition via matroid partition augmentation.

This is the centralized Gabow–Westermann-style substrate the paper
builds on (Section 1: "there is a polynomial time algorithm for
computing an exact α-forest decomposition in the centralized setting").
We implement the classic matroid-union augmenting-path algorithm for
the graphic matroid:

* maintain ``k`` forests; to insert an uncolored edge, search the
  exchange graph breadth-first: an edge ``f`` can *enter* forest ``c``
  directly if ``F_c + f`` is acyclic, or by *evicting* any edge on the
  unique cycle of ``F_c + f``.  A shortest augmenting path of
  enter/evict moves is applied back-to-front.
* if no augmenting path exists, the processed edges certify that no
  ``k``-forest partition covers them, so the arboricity exceeds ``k``
  and we open a new forest.

The result is simultaneously the exact arboricity ``α(G)`` and a
witness α-forest decomposition — ground truth for every bench.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..errors import DecompositionError
from ..graph.multigraph import MultiGraph


class _Forest:
    """One forest of the partition, with O(path) cycle queries.

    Stores adjacency of its edges; `cycle_with(u, v)` returns the edge
    ids on the unique u-v path (the cycle closed by a new u-v edge), or
    None if u, v are in different trees.
    """

    def __init__(self, graph: MultiGraph) -> None:
        self.graph = graph
        self.edges: Set[int] = set()
        self._adj: Dict[int, List[Tuple[int, int]]] = {}

    def add(self, eid: int) -> None:
        u, v = self.graph.endpoints(eid)
        self.edges.add(eid)
        self._adj.setdefault(u, []).append((eid, v))
        self._adj.setdefault(v, []).append((eid, u))

    def remove(self, eid: int) -> None:
        u, v = self.graph.endpoints(eid)
        self.edges.discard(eid)
        self._adj[u] = [(e, w) for e, w in self._adj[u] if e != eid]
        self._adj[v] = [(e, w) for e, w in self._adj[v] if e != eid]

    def path_edges(self, source: int, target: int) -> Optional[List[int]]:
        """Edge ids on the tree path source -> target, or None."""
        if source == target:
            return []
        if source not in self._adj or target not in self._adj:
            return None
        parent_edge: Dict[int, int] = {}
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            for eid, other in self._adj.get(vertex, ()):
                if other not in parent:
                    parent[other] = vertex
                    parent_edge[other] = eid
                    if other == target:
                        path = []
                        walk = target
                        while walk != source:
                            path.append(parent_edge[walk])
                            walk = parent[walk]
                        return path
                    queue.append(other)
        return None


class MatroidPartitionResult:
    """Outcome of :func:`exact_forest_partition`."""

    def __init__(self, coloring: Dict[int, int], num_forests: int) -> None:
        self.coloring = coloring
        self.num_forests = num_forests

    def classes(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for eid, color in self.coloring.items():
            out.setdefault(color, []).append(eid)
        return out


def exact_forest_partition(
    graph: MultiGraph, max_forests: Optional[int] = None
) -> MatroidPartitionResult:
    """Partition all edges into the minimum number of forests.

    Returns the coloring (edge id -> forest index, 0-based) using
    exactly ``α(G)`` forests.  ``max_forests`` optionally caps the
    search; exceeding it raises :class:`DecompositionError`.
    """
    if graph.m == 0:
        return MatroidPartitionResult({}, 0)

    forests: List[_Forest] = [_Forest(graph)]
    color_of: Dict[int, int] = {}

    for eid in graph.edge_ids():
        while not _try_insert(graph, forests, color_of, eid):
            if max_forests is not None and len(forests) >= max_forests:
                raise DecompositionError(
                    f"arboricity exceeds cap of {max_forests} forests"
                )
            forests.append(_Forest(graph))

    return MatroidPartitionResult(color_of, len(forests))


def _try_insert(
    graph: MultiGraph,
    forests: List[_Forest],
    color_of: Dict[int, int],
    new_edge: int,
) -> bool:
    """Insert ``new_edge`` via a shortest augmenting path; False if none."""
    # BFS over elements.  predecessor[f] = (g, c): f was reached because
    # adding g to forest c creates a cycle containing f.
    predecessor: Dict[int, Tuple[int, int]] = {}
    visited: Set[int] = {new_edge}
    queue = deque([new_edge])

    while queue:
        edge = queue.popleft()
        u, v = graph.endpoints(edge)
        for color, forest in enumerate(forests):
            if color_of.get(edge) == color:
                continue
            cycle = forest.path_edges(u, v)
            if cycle is None:
                # Terminal: edge enters `color` with no eviction.
                _apply_augmentation(forests, color_of, predecessor, edge, color)
                return True
            for blocked in cycle:
                if blocked not in visited:
                    visited.add(blocked)
                    predecessor[blocked] = (edge, color)
                    queue.append(blocked)
    return False


def _apply_augmentation(
    forests: List[_Forest],
    color_of: Dict[int, int],
    predecessor: Dict[int, Tuple[int, int]],
    terminal: int,
    terminal_color: int,
) -> None:
    """Apply the enter/evict chain ending at ``terminal``."""
    # Reconstruct the chain from terminal back to the uncolored edge.
    chain: List[Tuple[int, int]] = [(terminal, terminal_color)]
    edge = terminal
    while edge in predecessor:
        parent_edge, color = predecessor[edge]
        chain.append((parent_edge, color))
        edge = parent_edge
    # chain is [(terminal, c_end), ..., (start, c_1)]; apply from the
    # terminal inwards: each edge leaves its old forest (if any) and
    # enters its recorded color; the edge it evicted is the previous
    # element of the chain, which has already been moved out.
    for eid, color in chain:
        old = color_of.get(eid)
        if old is not None:
            forests[old].remove(eid)
        forests[color].add(eid)
        color_of[eid] = color
