"""Exact star arboricity for small graphs, plus combinatorial bounds.

The star arboricity ``αstar(G)`` is the minimum number of star-forests
partitioning the edges (Corollary 1.2 context).  Exact computation is
NP-hard in general; we provide a backtracking solver adequate for the
small ground-truth instances used by the Corollary 1.2 bench, plus the
standard bounds ``α <= αstar <= 2α``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from ..graph.multigraph import MultiGraph
from .arboricity import exact_arboricity


class _StarClass:
    """Incremental star-forest membership test for one color class.

    Tracks each vertex's neighbor set within the class.  An edge set is
    a star forest iff every edge has an endpoint of degree 1 and no two
    parallel edges share the class; both are checkable from local
    degrees at insertion time.
    """

    def __init__(self, graph: MultiGraph) -> None:
        self.graph = graph
        self.neighbors: Dict[int, Set[int]] = {}
        self.pairs: Set[Tuple[int, int]] = set()

    @property
    def degree(self) -> Dict[int, Set[int]]:
        # Used only as an emptiness indicator by the solver.
        return self.neighbors

    def _deg(self, vertex: int) -> int:
        return len(self.neighbors.get(vertex, ()))

    def can_add(self, u: int, v: int) -> bool:
        key = (min(u, v), max(u, v))
        if key in self.pairs:
            return False  # parallel edge inside one class => 2-cycle
        du, dv = self._deg(u), self._deg(v)
        if du == 0 and dv == 0:
            return True
        if du > 0 and dv > 0:
            return False  # both endpoints used => P4 or cycle
        center = u if du > 0 else v
        if self._deg(center) == 1:
            # `center` is currently a leaf; it may flip to being the
            # center of its K2 only if its unique neighbor is also a
            # leaf (otherwise that neighbor is a real center and we
            # would create a 3-edge path).
            (other,) = self.neighbors[center]
            return self._deg(other) == 1
        return True  # already a proper center

    def add(self, u: int, v: int) -> None:
        self.pairs.add((min(u, v), max(u, v)))
        self.neighbors.setdefault(u, set()).add(v)
        self.neighbors.setdefault(v, set()).add(u)

    def remove(self, u: int, v: int) -> None:
        self.pairs.discard((min(u, v), max(u, v)))
        self.neighbors[u].discard(v)
        self.neighbors[v].discard(u)
        if not self.neighbors[u]:
            del self.neighbors[u]
        if not self.neighbors[v]:
            del self.neighbors[v]


def star_forest_partition_exists(
    graph: MultiGraph, k: int, max_edges: int = 40
) -> Optional[Dict[int, int]]:
    """Backtracking: a k-star-forest partition, or None.

    Exponential time; refuses graphs with more than ``max_edges`` edges.
    Edges are assigned in descending-degree order with symmetry breaking
    on the first edge.
    """
    if graph.m > max_edges:
        raise GraphError(
            f"exact star arboricity limited to m <= {max_edges}, got {graph.m}"
        )
    if graph.m == 0:
        return {}
    if k <= 0:
        return None

    order = sorted(
        graph.edge_ids(),
        key=lambda e: -(graph.degree(graph.endpoints(e)[0]) + graph.degree(graph.endpoints(e)[1])),
    )
    classes = [_StarClass(graph) for _ in range(k)]
    assignment: Dict[int, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        eid = order[index]
        u, v = graph.endpoints(eid)
        tried_empty = False
        for color, cls in enumerate(classes):
            if not cls.degree:
                if tried_empty:
                    continue  # symmetry: all empty classes equivalent
                tried_empty = True
            if cls.can_add(u, v):
                cls.add(u, v)
                assignment[eid] = color
                if backtrack(index + 1):
                    return True
                cls.remove(u, v)
                del assignment[eid]
        return False

    return dict(assignment) if backtrack(0) else None


def exact_star_arboricity(graph: MultiGraph, max_edges: int = 40) -> int:
    """Exact αstar(G) by increasing k until a partition exists."""
    if graph.m == 0:
        return 0
    lower = max(1, exact_arboricity(graph))
    k = lower
    while True:
        if star_forest_partition_exists(graph, k, max_edges) is not None:
            return k
        k += 1


def star_arboricity_bounds(graph: MultiGraph) -> Tuple[int, int]:
    """(lower, upper) bounds: α <= αstar <= 2α (Corollary 1.2)."""
    alpha = exact_arboricity(graph)
    if alpha == 0:
        return 0, 0
    return alpha, 2 * alpha
