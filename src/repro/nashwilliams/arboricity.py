"""Exact arboricity and Nash-Williams density.

``exact_arboricity`` runs the matroid-partition algorithm and returns
the minimum number of forests.  ``nash_williams_density_exact`` checks
the Nash-Williams formula

    α(G) = max over subgraphs H, |V(H)| >= 2, of ⌈|E(H)| / (|V(H)|-1)⌉

by brute-force subset enumeration — exponential, so only for tiny
graphs; it exists to cross-validate the matroid algorithm in tests.
``densest_induced_density`` gives the (fractional) maximum of
|E(H)|/(|V(H)|-1) for reporting.
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import GraphError
from ..graph.multigraph import MultiGraph
from .matroid_partition import MatroidPartitionResult, exact_forest_partition


def exact_arboricity(graph: MultiGraph) -> int:
    """The exact arboricity α(G) (0 for edgeless graphs)."""
    return exact_forest_partition(graph).num_forests


def exact_forest_decomposition(graph: MultiGraph) -> Dict[int, int]:
    """An exact α(G)-forest decomposition as edge id -> forest index."""
    return exact_forest_partition(graph).coloring


def nash_williams_density_exact(graph: MultiGraph, max_n: int = 14) -> int:
    """Brute-force Nash-Williams bound (exponential; tiny graphs only).

    Enumerates all vertex subsets of size >= 2 and returns
    ``max ⌈|E(H)|/(|V(H)|-1)⌉`` over induced subgraphs H.
    """
    n = graph.n
    if n > max_n:
        raise GraphError(
            f"brute-force Nash-Williams density limited to n <= {max_n}, got {n}"
        )
    if graph.m == 0:
        return 0
    vertices = graph.vertices()
    edge_list = [(u, v) for _eid, u, v in graph.edges()]
    best = 0
    for size in range(2, n + 1):
        for subset in itertools.combinations(vertices, size):
            inside = set(subset)
            count = sum(1 for u, v in edge_list if u in inside and v in inside)
            if count:
                best = max(best, math.ceil(count / (size - 1)))
    return best


def densest_induced_density(graph: MultiGraph, max_n: int = 14) -> Fraction:
    """Exact max of |E(H)|/(|V(H)|-1) as a Fraction (tiny graphs only)."""
    n = graph.n
    if n > max_n:
        raise GraphError(
            f"brute-force density limited to n <= {max_n}, got {n}"
        )
    vertices = graph.vertices()
    edge_list = [(u, v) for _eid, u, v in graph.edges()]
    best = Fraction(0)
    for size in range(2, n + 1):
        for subset in itertools.combinations(vertices, size):
            inside = set(subset)
            count = sum(1 for u, v in edge_list if u in inside and v in inside)
            best = max(best, Fraction(count, size - 1))
    return best


def whole_graph_density_lower_bound(graph: MultiGraph) -> int:
    """⌈m/(n-1)⌉ — the trivial Nash-Williams lower bound on α."""
    if graph.n < 2 or graph.m == 0:
        return 0
    return math.ceil(graph.m / (graph.n - 1))
