"""The shared parallel wave engine.

Every scaling substrate in this library executes the same shape of
computation: a **frontier-synchronous wave**.  Degree peeling
(H-partition, Theorem 2.3), multi-seed BFS (ball carving for network
decomposition, per-color-class diameter scans in LSFD / list-forest),
and forest rooting all alternate

1. a **shard phase** — per-shard kernels that only *read* frozen
   shared state (degree arrays, distance arrays, visited masks) and
   produce per-shard result arrays, and
2. a **reconcile phase** — one batched, deterministic update of the
   shared state from the concatenated shard results, which also
   yields the next wave's work-list.

PR 4 built this machinery inside ``repro.graph.shard`` for peeling
only; this module lifts it out so every wave-shaped hot path runs on
one engine instead of per-subsystem copies.

Determinism contract
--------------------

The engine guarantees that fanning a wave out over worker threads is
**invisible in the output**:

* work splits along :class:`~repro.parallel.plan.ShardPlan`
  boundaries, and a plan is a pure function of the snapshot — never
  of the worker count;
* kernels receive disjoint ascending slices and only read frozen
  state, so their results are independent of scheduling;
* per-shard results concatenate in plan order, reproducing the serial
  gather byte for byte;
* the fan-out *gate* reads only wave content (work-list size, summed
  half-edges), never timing, so whether a wave ran inline or on the
  pool cannot perturb results.

Clients therefore satisfy "bit-identical for every worker count" by
construction; the equivalence suite asserts it across workers in
{1, 2, 4} and shard counts {1, 3, 7}.

Worker pool
-----------

Workers are **threads** (one shared :class:`ThreadPoolExecutor` per
worker count): the kernels are numpy slice/gather operations, which
release the GIL, so threads overlap on multi-core machines while
sharing the snapshot arrays zero-copy — no pickling, no shared-memory
segment lifecycle, no fork-safety constraints on user code.  Pools are
owned by this module: created on first use, reused across engines,
shut down by :func:`shutdown` (registered via ``atexit``), with
aggregate stats exposed by :func:`pool_stats` (surfaced through
``Session.cache_info()``).

``REPRO_SHARD_WORKERS`` is read **once** (first ``workers=0``
resolution) and caches as the auto worker count; previously each
forced-sharded peel re-read the environment.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import GraphError
from .plan import ShardPlan, plan_of
from .shm import (
    MP_FAN_OUT_MIN_HALF_EDGES,
    MP_FAN_OUT_MIN_SCAN_VERTICES,
    SharedKernel,
    map_on_mp_pool,
    mp_pool_stats,
    mp_shutdown,
    release_shared,
    resolve_mp_workers,
)

__all__ = [
    "WaveEngine",
    "MPWaveEngine",
    "engine_for",
    "engine_for_offsets",
    "resolve_workers",
    "shutdown",
    "pool_stats",
    "FAN_OUT_MIN_HALF_EDGES",
    "FAN_OUT_MIN_SCAN_VERTICES",
    "MAX_AUTO_WORKERS",
]

#: waves whose kernels cover less work than this run inline: thread
#: dispatch costs ~50us, the work would take less.  The gate reads only
#: the wave's content (a deterministic function of the graph and the
#: work-list), so fan-out can never change results.
FAN_OUT_MIN_HALF_EDGES = 32768

#: full shard scans over fewer vertices than this run inline for the
#: same reason (scan work is proportional to the vertex count).
FAN_OUT_MIN_SCAN_VERTICES = 32768

#: default worker count (workers=0): the machine's cores, capped —
#: frontier waves stop scaling long before large core counts.
MAX_AUTO_WORKERS = 4

# ----------------------------------------------------------------------
# Worker resolution + pool ownership
# ----------------------------------------------------------------------

#: cached REPRO_SHARD_WORKERS value; ``None`` = not yet read.  The
#: environment is consulted exactly once per process (tests reset this
#: sentinel to re-read).
_ENV_WORKERS: Optional[int] = None
_ENV_WORKERS_READ = False


def _env_default_workers() -> Optional[int]:
    global _ENV_WORKERS, _ENV_WORKERS_READ
    if not _ENV_WORKERS_READ:
        raw = os.environ.get("REPRO_SHARD_WORKERS", "").strip()
        _ENV_WORKERS = int(raw) if raw else None
        _ENV_WORKERS_READ = True
    return _ENV_WORKERS


def resolve_workers(workers: int = 0) -> int:
    """Concrete worker count for a ``workers`` knob (0 = auto).

    Auto honors ``REPRO_SHARD_WORKERS`` when set (read once per
    process), else uses the machine's cores capped at
    :data:`MAX_AUTO_WORKERS`.  Worker count is purely a throughput
    knob — results are identical for every value.
    """
    if workers < 0:
        raise GraphError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        env = _env_default_workers()
        if env is not None and env > 0:
            return env
        return max(1, min(MAX_AUTO_WORKERS, os.cpu_count() or 1))
    return workers


_POOLS: Dict[int, ThreadPoolExecutor] = {}
_DISPATCHES = 0


def _pool_for(workers: int) -> ThreadPoolExecutor:
    """A shared thread pool per worker count.

    Pools are reused across waves and engines — spawning threads per
    wave would cost more than small waves themselves.  Idle pools hold
    no GIL and nearly no memory; :func:`shutdown` (atexit-registered)
    tears them down.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-wave"
        )
        _POOLS[workers] = pool
    return pool


def shutdown(wait: bool = True) -> None:
    """Shut down every worker pool the engine owns — thread pools,
    the mp backend's process pools, and its shared-memory segments.

    Safe to call repeatedly; pools recreate lazily on next use.
    Registered with ``atexit`` so interpreter shutdown never leaks
    executor threads (the PR-4 module-global pools were never torn
    down) or ``/dev/shm`` segments; the serve daemon's SIGTERM path
    calls this too, so a killed daemon reclaims everything.  Process
    pools drain before segments unlink so no worker is mid-wave on a
    vanishing mapping.
    """
    pools = list(_POOLS.values())
    _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)
    mp_shutdown(wait=wait)
    release_shared()


atexit.register(shutdown)


def pool_stats() -> Dict[str, int]:
    """Aggregate pool statistics (ints, cache_info-friendly):
    live pool count, their total worker threads, and how many waves
    were dispatched to a pool (vs. run inline) process-wide — plus the
    mp backend's process-pool/segment counters (``mp_pools``,
    ``mp_workers``, ``mp_dispatches``, ``shm_segments``).

    ``_POOLS`` is keyed by worker count, so the key sum *is* the
    thread total — no reliance on ``ThreadPoolExecutor`` internals
    (an earlier version read the private ``_max_workers`` attribute,
    which an executor implementation change would break).
    """
    stats = {
        "pools": len(_POOLS),
        "workers": sum(_POOLS.keys()),
        "dispatches": _DISPATCHES,
    }
    stats.update(mp_pool_stats())
    return stats


def _map_on_pool(workers: int, fn, items) -> Optional[list]:
    """Run ``fn`` over ``items`` on the shared pool; ``None`` if the
    pool rejected the work.

    :func:`shutdown` may clear ``_POOLS`` between a wave's
    ``_pool_for`` lookup and its dispatch (atexit, a test's teardown,
    an embedding application shutting the library down mid-run), in
    which case the executor raises ``RuntimeError: cannot schedule new
    futures after shutdown``.  Callers treat ``None`` as "run this
    wave inline" — same results (kernels are deterministic in wave
    content), no crash.  A dead executor still cached in ``_POOLS``
    is evicted so later waves get a fresh pool.
    """
    pool = _pool_for(workers)
    try:
        return list(pool.map(fn, items))
    except RuntimeError:
        if _POOLS.get(workers) is pool:
            del _POOLS[workers]
        return None


def _concat_arrays(parts: List[np.ndarray]) -> np.ndarray:
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class WaveEngine:
    """Executes frontier-synchronous waves over a :class:`ShardPlan`.

    Parameters
    ----------
    plan:
        The shard plan work splits along.  Pure function of the
        snapshot; validated against it by :func:`engine_for`.
    workers:
        Worker threads (0 = auto, see :func:`resolve_workers`).
        Purely a throughput knob — outputs are identical for every
        value, because kernels read frozen state and results
        concatenate in plan order.
    min_gather_work / min_scan_items:
        Fan-out gates: waves below them run inline (dispatch latency
        would exceed the work).  Both read only wave content, so the
        inline/pool decision cannot perturb results; they also double
        as the "small color classes stay serial" knobs of the BFS
        clients.
    """

    __slots__ = (
        "plan",
        "workers",
        "min_gather_work",
        "min_scan_items",
        "dispatches",
    )

    #: True on :class:`MPWaveEngine` — lets clients decide whether to
    #: publish their state arrays as shared memory.
    mp = False

    def __init__(
        self,
        plan: ShardPlan,
        workers: int = 0,
        min_gather_work: int = FAN_OUT_MIN_HALF_EDGES,
        min_scan_items: int = FAN_OUT_MIN_SCAN_VERTICES,
    ) -> None:
        self.plan = plan
        self.workers = resolve_workers(workers)
        self.min_gather_work = min_gather_work
        self.min_scan_items = min_scan_items
        #: waves this engine handed to the pool (inline waves excluded)
        self.dispatches = 0

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    # -- fan-out decisions ---------------------------------------------

    def should_fan_out(self, cost: Optional[int], items: int) -> bool:
        """Whether a wave of ``items`` work units covering ``cost``
        half-edges goes to the pool.  Deterministic in wave content."""
        return (
            self.workers > 1
            and items >= self.workers
            and (cost is None or cost >= self.min_gather_work)
        )

    def _note_dispatch(self) -> None:
        global _DISPATCHES
        self.dispatches += 1
        _DISPATCHES += 1

    # -- wave phase primitives -----------------------------------------

    def _index_groups(self, work: np.ndarray) -> List[np.ndarray]:
        """Split an ascending work-list into up to ``workers`` groups of
        whole shards (balanced by work count, boundaries snapped to the
        plan's shard edges).  A shard with no work contributes nothing,
        so inactive regions cost no scheduling."""
        edges = np.concatenate((
            [0],
            np.searchsorted(work, self.plan.boundaries[1:-1], side="left"),
            [work.size],
        ))
        targets = (
            np.arange(1, self.workers, dtype=np.int64) * work.size
        ) // self.workers
        picks = edges[np.searchsorted(edges, targets, side="left")]
        cuts = np.unique(np.concatenate(([0], picks, [work.size])))
        return [work[a:b] for a, b in zip(cuts[:-1], cuts[1:])]

    def gather(
        self,
        kernel: Callable[[np.ndarray], object],
        work: np.ndarray,
        cost: Optional[int] = None,
    ) -> object:
        """Run the shard phase of one wave.

        ``kernel(indices)`` maps an ascending slice of the work-list to
        an array (or a tuple of same-length arrays); the engine splits
        the work into shard-aligned groups, runs them on the pool when
        the gate passes, and concatenates results **in plan order** —
        byte-identical to ``kernel(work)`` run serially.
        """
        if self.should_fan_out(cost, int(work.size)):
            groups = self._index_groups(work)
            if len(groups) > 1:
                parts = _map_on_pool(self.workers, kernel, groups)
                if parts is not None:
                    self._note_dispatch()
                    first = parts[0]
                    if isinstance(first, tuple):
                        return tuple(
                            _concat_arrays([p[i] for p in parts])
                            for i in range(len(first))
                        )
                    return _concat_arrays(parts)
        return kernel(work)

    def wave(
        self,
        work: np.ndarray,
        kernel: Callable[[np.ndarray], object],
        reconcile: Callable[[object], object],
        cost: Optional[int] = None,
    ) -> object:
        """One full wave: shard phase (:meth:`gather`) then a single
        reconcile call on the concatenated results.  The reconcile is
        the only writer of shared state, which is what makes the wave
        deterministic under any worker count."""
        return reconcile(self.gather(kernel, work, cost))

    def scan_shards(
        self, kernel: Callable[[int, int], np.ndarray]
    ) -> np.ndarray:
        """Full-plan scan: ``kernel(lo, hi)`` over every shard's index
        range, concatenated in plan order.  Used by waves that have no
        prepared work-list yet (e.g. the first peeling wave)."""
        bounds = self.plan.boundaries
        shards = range(self.num_shards)

        def run(shard: int) -> np.ndarray:
            return kernel(int(bounds[shard]), int(bounds[shard + 1]))

        parts = None
        if self.workers > 1 and self.plan.num_items >= self.min_scan_items:
            parts = _map_on_pool(self.workers, run, shards)
            if parts is not None:
                self._note_dispatch()
        if parts is None:
            parts = [run(s) for s in shards]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return _concat_arrays(parts)

    def map_ranges(
        self,
        fn: Callable[[int, int], object],
        count: int,
        cost: Optional[int] = None,
    ) -> List[object]:
        """Embarrassingly parallel loop helper: split ``range(count)``
        into up to ``workers`` contiguous chunks, run ``fn(lo, hi)`` on
        each, return results in chunk order.  For order-free reductions
        (max eccentricity over BFS sources, reachability flags).

        ``cost`` is the wave-content gate shared with :meth:`gather`
        (estimated total work units): loops below
        ``min_gather_work`` run inline, so tiny clusters never pay
        pool dispatch."""
        if count <= 0:
            return []
        chunks = min(self.workers, count)
        if chunks <= 1 or not self.should_fan_out(cost, count):
            return [fn(0, count)]
        bounds = [(index * count) // chunks for index in range(chunks + 1)]
        pairs = list(zip(bounds[:-1], bounds[1:]))
        parts = _map_on_pool(
            self.workers, lambda pair: fn(pair[0], pair[1]), pairs
        )
        if parts is None:
            return [fn(lo, hi) for lo, hi in pairs]
        self._note_dispatch()
        return parts

    def __repr__(self) -> str:
        return (
            f"WaveEngine(shards={self.num_shards}, workers={self.workers})"
        )


class MPWaveEngine(WaveEngine):
    """A :class:`WaveEngine` that fans :class:`SharedKernel` waves out
    over worker **processes** (``backend="mp"``).

    Plain closure kernels fall through to the inherited thread/inline
    path unchanged, so un-ported call sites stay correct; shared
    kernels dispatch to the spawn-context process pool with only
    ``(function path, segment descriptors, shard slice)`` crossing the
    pipe — the snapshot arrays are mapped zero-copy on the other side.
    Results concatenate in plan order exactly like the thread path, and
    a rejected dispatch (pool shutdown race, broken pool) falls back to
    the serial kernel — so the bit-identical-across-worker-counts
    contract is inherited, not re-proven.

    The fan-out gates default an order of magnitude above the thread
    gates: a process dispatch costs ~1ms against a thread's ~50us.
    """

    __slots__ = ()

    mp = True

    def __init__(
        self,
        plan: ShardPlan,
        workers: int = 0,
        min_gather_work: int = MP_FAN_OUT_MIN_HALF_EDGES,
        min_scan_items: int = MP_FAN_OUT_MIN_SCAN_VERTICES,
    ) -> None:
        super().__init__(
            plan, resolve_mp_workers(workers), min_gather_work, min_scan_items
        )

    def gather(
        self,
        kernel: Callable[[np.ndarray], object],
        work: np.ndarray,
        cost: Optional[int] = None,
    ) -> object:
        if isinstance(kernel, SharedKernel) and self.should_fan_out(
            cost, int(work.size)
        ):
            groups = self._index_groups(work)
            if len(groups) > 1:
                parts = map_on_mp_pool(self.workers, kernel, groups)
                if parts is not None:
                    self._note_dispatch()
                    first = parts[0]
                    if isinstance(first, tuple):
                        return tuple(
                            _concat_arrays([p[i] for p in parts])
                            for i in range(len(first))
                        )
                    return _concat_arrays(parts)
        return super().gather(kernel, work, cost)

    def scan_shards(
        self, kernel: Callable[[int, int], np.ndarray]
    ) -> np.ndarray:
        if (
            isinstance(kernel, SharedKernel)
            and self.workers > 1
            and self.plan.num_items >= self.min_scan_items
        ):
            bounds = self.plan.boundaries
            pairs = [
                (int(bounds[shard]), int(bounds[shard + 1]))
                for shard in range(self.num_shards)
            ]
            parts = map_on_mp_pool(self.workers, kernel, pairs)
            if parts is not None:
                self._note_dispatch()
                parts = [p for p in parts if p.size]
                if not parts:
                    return np.empty(0, dtype=np.int64)
                return _concat_arrays(parts)
        return super().scan_shards(kernel)

    def map_ranges(
        self,
        fn: Callable[[int, int], object],
        count: int,
        cost: Optional[int] = None,
    ) -> List[object]:
        if isinstance(fn, SharedKernel) and count > 0:
            chunks = min(self.workers, count)
            if chunks > 1 and self.should_fan_out(cost, count):
                bounds = [
                    (index * count) // chunks for index in range(chunks + 1)
                ]
                pairs = list(zip(bounds[:-1], bounds[1:]))
                parts = map_on_mp_pool(self.workers, fn, pairs)
                if parts is not None:
                    self._note_dispatch()
                    return parts
        return super().map_ranges(fn, count, cost)

    def __repr__(self) -> str:
        return (
            f"MPWaveEngine(shards={self.num_shards}, "
            f"workers={self.workers})"
        )


def engine_for(
    snapshot,
    workers: int = 0,
    plan: Optional[ShardPlan] = None,
    mp: bool = False,
) -> WaveEngine:
    """A :class:`WaveEngine` over a snapshot's (cached) shard plan
    (``mp=True`` for the process-backed :class:`MPWaveEngine`).

    An explicitly supplied plan is validated against the snapshot —
    a torn plan (built from a different snapshot) is rejected up
    front rather than producing silently wrong shard slices.
    """
    if plan is None:
        plan = plan_of(snapshot)
    if plan.num_items != snapshot.num_vertices:
        raise GraphError(
            f"shard plan covers {plan.num_items} vertices, "
            f"snapshot has {snapshot.num_vertices}"
        )
    return MPWaveEngine(plan, workers) if mp else WaveEngine(plan, workers)


def engine_for_offsets(
    offsets: np.ndarray,
    workers: int = 0,
    num_shards: Optional[int] = None,
    mp: bool = False,
) -> WaveEngine:
    """A :class:`WaveEngine` over a bare CSR offset array (sub-CSR
    extractions: per-color classes, induced cluster subgraphs)."""
    plan = ShardPlan.from_offsets(offsets, num_shards)
    return MPWaveEngine(plan, workers) if mp else WaveEngine(plan, workers)
