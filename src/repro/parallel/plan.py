"""Shard plans: contiguous, half-edge-balanced slices of a CSR offset
array.

A :class:`ShardPlan` is the unit of work distribution for every wave
the :class:`~repro.parallel.engine.WaveEngine` runs — peeling waves,
BFS frontier expansions, ball-carving shells.  Two properties carry
the determinism contract:

* a plan is a **pure function of the snapshot** (never of the worker
  count), so the same graph always shards the same way and workers
  merely consume the shards;
* every shard is a **contiguous dense-index slice**, so per-shard
  results concatenate in ascending index order no matter which worker
  finished first.

The plan machinery lived inside :mod:`repro.graph.shard` while peeling
was its only client; it moved here when the BFS-shaped hot paths
started sharing it (see :mod:`repro.parallel.engine`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import GraphError

__all__ = [
    "ShardPlan",
    "plan_of",
    "default_num_shards",
    "SHARD_TARGET_VERTICES",
    "SHARD_TARGET_HALF_EDGES",
    "MAX_SHARDS",
]

#: target vertices per shard when the plan does not say otherwise
SHARD_TARGET_VERTICES = 8192
#: target half-edges per shard (denser graphs get more shards)
SHARD_TARGET_HALF_EDGES = 65536
#: never split a graph into more shards than this
MAX_SHARDS = 64


def default_num_shards(num_vertices: int, num_half_edges: int) -> int:
    """Shard count for a snapshot: scale with both vertex count and
    density, bounded by :data:`MAX_SHARDS` (and by ``n`` — a shard is
    never empty by construction unless the graph is smaller than the
    shard count)."""
    if num_vertices <= 1:
        return 1
    by_vertices = -(-num_vertices // SHARD_TARGET_VERTICES)
    by_half_edges = -(-num_half_edges // SHARD_TARGET_HALF_EDGES)
    return max(1, min(MAX_SHARDS, num_vertices, max(by_vertices, by_half_edges)))


class ShardPlan:
    """A partition of a dense vertex range into contiguous slices of a
    CSR offset array, balanced by half-edge count.

    ``boundaries`` has length ``num_shards + 1`` with
    ``boundaries[0] == 0`` and ``boundaries[-1] == n``; shard ``s``
    owns vertex indices ``boundaries[s]:boundaries[s+1]``.  The plan
    depends only on the snapshot (never on the worker count), which is
    one half of the determinism story: the same graph always shards
    the same way, workers merely consume the shards.
    """

    __slots__ = ("boundaries", "num_shards")

    def __init__(self, boundaries: np.ndarray) -> None:
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise GraphError("shard plan needs at least one shard")
        if boundaries[0] != 0 or np.any(np.diff(boundaries) < 0):
            raise GraphError("shard boundaries must be nondecreasing from 0")
        self.boundaries = boundaries
        self.num_shards = int(boundaries.size - 1)

    @property
    def num_items(self) -> int:
        """The dense index range the plan covers (``boundaries[-1]``)."""
        return int(self.boundaries[-1])

    @classmethod
    def from_offsets(
        cls, offsets: np.ndarray, num_shards: Optional[int] = None
    ) -> "ShardPlan":
        """Balance shards over any CSR offset array so each owns
        roughly equal half-edges.

        Vertex ``i``'s half-edges end at ``offsets[i+1]``; placing
        boundaries at evenly spaced half-edge targets via
        ``searchsorted`` keeps dense regions from piling onto one
        worker while every shard stays a contiguous index slice.
        """
        n = int(offsets.shape[0]) - 1
        if num_shards is None:
            num_shards = default_num_shards(n, int(offsets[-1]))
        if num_shards < 1:
            raise GraphError(f"num_shards must be >= 1, got {num_shards}")
        num_shards = min(num_shards, max(1, n))
        if n == 0:
            return cls(np.zeros(num_shards + 1, dtype=np.int64))
        total = int(offsets[-1])
        targets = (np.arange(1, num_shards, dtype=np.int64) * total) // num_shards
        inner = np.searchsorted(offsets[1:], targets, side="left") + 1
        boundaries = np.concatenate(([0], inner, [n]))
        # Degenerate distributions (one hub vertex holding most edges)
        # can collapse several targets onto one index; keep boundaries
        # monotone — empty shards are allowed and simply skipped.
        np.maximum.accumulate(boundaries, out=boundaries)
        np.minimum(boundaries, n, out=boundaries)
        return cls(boundaries)

    @classmethod
    def from_snapshot(
        cls, snapshot, num_shards: Optional[int] = None
    ) -> "ShardPlan":
        """Balance shards over a :class:`~repro.graph.csr.CSRGraph`
        snapshot's offset array (see :meth:`from_offsets`)."""
        return cls.from_offsets(snapshot.vertex_offsets, num_shards)

    def shard_of(self, index: int) -> int:
        """The shard owning dense vertex index ``index``."""
        return int(
            np.searchsorted(self.boundaries, index, side="right") - 1
        )

    def split(self, indices: np.ndarray) -> List[np.ndarray]:
        """Split an ascending index array into per-shard slices (views)."""
        cuts = np.searchsorted(indices, self.boundaries[1:-1], side="left")
        return np.split(indices, cuts)

    def __repr__(self) -> str:
        return (
            f"ShardPlan(num_shards={self.num_shards}, "
            f"n={int(self.boundaries[-1])})"
        )


def plan_of(snapshot, num_shards: Optional[int] = None) -> ShardPlan:
    """The snapshot's cached default :class:`ShardPlan`.

    Snapshots are immutable, so the default plan is computed once and
    cached on the instance (mirroring ``snapshot_of``'s caching on the
    source graph); explicit ``num_shards`` bypasses the cache.
    """
    if num_shards is not None:
        return ShardPlan.from_snapshot(snapshot, num_shards)
    cached = snapshot._shard_plan_cache
    if cached is None:
        cached = ShardPlan.from_snapshot(snapshot)
        snapshot._shard_plan_cache = cached
    return cached
