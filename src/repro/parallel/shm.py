"""Shared-memory process fan-out for the wave engine.

The thread pools in :mod:`repro.parallel.engine` scale the numpy slice
kernels (they release the GIL) but cap every Python-bound wave kernel
at single-core throughput.  This module supplies the pieces the
``backend="mp"`` substrate needs to fan those waves out over worker
**processes** instead:

* **Shared arrays** — the frozen CSR snapshot arrays and the per-run
  state arrays (``alive`` / ``remaining`` / distance masks) are
  published once into ``multiprocessing.shared_memory`` segments (or
  referenced in place when they are already ``np.memmap``-backed, the
  out-of-core case), so worker processes map them zero-copy instead of
  pickling hundreds of megabytes per wave.
* **Shared kernels** — a :class:`SharedKernel` names a *module-level*
  kernel function plus the shared arrays it reads.  It pickles as a
  few hundred bytes (function path + segment descriptors), runs
  inline/on threads exactly like the closure it replaces, and runs in
  a worker process by attaching the named segments.  Workers only ever
  *read* shared state (attached arrays are marked read-only); results
  ship back as compact per-shard buffers for the engine's single-writer
  reconcile, so the bit-identical-across-worker-counts contract of
  :class:`~repro.parallel.engine.WaveEngine` carries over unchanged.
* **Process pools** — one spawn-context ``ProcessPoolExecutor`` per
  worker count, mirroring the thread-pool lifecycle: created on first
  use, reused across waves, torn down by :func:`mp_shutdown` (called
  from ``repro.parallel.engine.shutdown()``, which is atexit-registered
  and invoked on the serve daemon's SIGTERM path).  The spawn context
  is deliberate: workers start from a fresh interpreter, so they
  inherit no lazily-mutated parent state (RNG positions, cached env
  reads) — fork would silently copy both.

Segment lifecycle
-----------------

Every segment this process creates is tracked in a registry and
unlinked by :func:`release_shared` — reached via ``engine.shutdown()``,
atexit, and the daemon's signal handlers — so ``/dev/shm`` never
accumulates leaked ``repro-shm-*`` files.  Worker-side attachments are
explicitly unregistered from the ``multiprocessing`` resource tracker:
CPython registers *attached* segments for cleanup too, so a worker
exiting would otherwise unlink segments the master still uses
(python/cpython#82300).

``REPRO_MP_WORKERS`` sizes the process pools (read once, like
``REPRO_SHARD_WORKERS``); ``REPRO_FORCE_MP`` (read in
:mod:`repro.graph.csr`) reroutes backend resolution through ``"mp"``.
"""

from __future__ import annotations

import atexit
import importlib
import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, shared_memory
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..errors import GraphError

__all__ = [
    "SharedArrayRef",
    "SharedKernel",
    "shared_kernel",
    "share_array",
    "shared_state",
    "release_shared",
    "owned_segments",
    "resolve_mp_workers",
    "mp_shutdown",
    "mp_pool_stats",
    "map_on_mp_pool",
    "MAX_INLINE_BYTES",
    "MP_FAN_OUT_MIN_HALF_EDGES",
    "MP_FAN_OUT_MIN_SCAN_VERTICES",
]

#: process dispatch costs ~1ms (pickle + queue + result pickle), ~20x a
#: thread dispatch, so the mp fan-out gates sit an order of magnitude
#: above the thread gates.  Like those, they read only wave content —
#: the inline/pool decision can never perturb results.
MP_FAN_OUT_MIN_HALF_EDGES = 262_144
MP_FAN_OUT_MIN_SCAN_VERTICES = 262_144

#: read-only arrays at or below this many bytes ride along inside the
#: pickled kernel instead of getting a segment: a scalar threshold or a
#: small seed list is cheaper to copy than to map.
MAX_INLINE_BYTES = 16_384


# ----------------------------------------------------------------------
# Worker resolution (REPRO_MP_WORKERS, read once)
# ----------------------------------------------------------------------

_ENV_MP_WORKERS: Optional[int] = None
_ENV_MP_WORKERS_READ = False


def _env_mp_workers() -> Optional[int]:
    """The cached ``REPRO_MP_WORKERS`` value (single read per process;
    tests reset the sentinel to re-read)."""
    global _ENV_MP_WORKERS, _ENV_MP_WORKERS_READ
    if not _ENV_MP_WORKERS_READ:
        raw = os.environ.get("REPRO_MP_WORKERS", "").strip()
        _ENV_MP_WORKERS = int(raw) if raw else None
        _ENV_MP_WORKERS_READ = True
    return _ENV_MP_WORKERS


def resolve_mp_workers(workers: int = 0) -> int:
    """Concrete process count for a ``workers`` knob (0 = auto).

    Auto honors ``REPRO_MP_WORKERS`` when set, else falls back to the
    machine's cores capped at the engine's ``MAX_AUTO_WORKERS``.  Like
    every worker knob here, the count never changes results.
    """
    if workers < 0:
        raise GraphError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        env = _env_mp_workers()
        if env is not None and env > 0:
            return env
        from .engine import MAX_AUTO_WORKERS

        return max(1, min(MAX_AUTO_WORKERS, os.cpu_count() or 1))
    return workers


# ----------------------------------------------------------------------
# Shared array publication (master side)
# ----------------------------------------------------------------------


class SharedArrayRef(NamedTuple):
    """Picklable descriptor a worker process resolves to an ndarray.

    ``kind`` is ``"shm"`` (``where`` = segment name), ``"mmap"``
    (``where`` = backing file path, plus ``offset`` into it), or
    ``"inline"`` (``where`` = the raw bytes; small read-only arrays
    ride inside the pickle).
    """

    kind: str
    where: object
    dtype: str
    shape: Tuple[int, ...]
    offset: int = 0


#: segments created by this process: name -> SharedMemory (owner handle)
_OWNED: Dict[str, shared_memory.SharedMemory] = {}

#: read-only publications: id(array) -> (strong ref keeping the id
#: stable, its descriptor).  Cleared by release_shared().
_EXPORTS: Dict[int, Tuple[np.ndarray, SharedArrayRef]] = {}

_SEGMENT_SEQ = itertools.count()


def _untrack(name: str) -> None:
    """Withdraw a segment from the ``multiprocessing`` resource
    tracker.  The tracker keys by name in one process-tree-wide set, so
    a worker's attach-then-exit would unregister (and at tracker
    shutdown, unlink) segments the master still owns
    (python/cpython#82300).  This module owns cleanup itself —
    :func:`release_shared` on shutdown/atexit/SIGTERM; a SIGKILLed
    process leaves ``/dev/shm/repro-shm-*`` files for manual removal
    (documented in docs/api.md)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker API is private-ish
        pass


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    name = f"repro-shm-{os.getpid()}-{next(_SEGMENT_SEQ)}"
    seg = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, nbytes)
    )
    _untrack(seg.name)
    _OWNED[seg.name] = seg
    return seg


def _as_contiguous(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array)


def share_array(array: np.ndarray) -> SharedArrayRef:
    """Publish a **frozen** array for worker processes; returns its ref.

    ``np.memmap`` arrays are referenced by their backing file (nothing
    to copy — the out-of-core snapshot case); tiny arrays inline into
    the descriptor; everything else is copied once into a shared-memory
    segment.  Publications are cached by array identity (the registry
    keeps the array alive, so ids cannot be reused while cached) —
    per-wave kernel construction costs a dict hit.

    The caller promises the array is immutable for the lifetime of the
    publication: segment copies do not track later master-side writes.
    Mutable per-run state goes through :func:`shared_state` instead.
    """
    # repro: allow(det-id) — pure identity-keyed publication cache: the
    # id is never ordered, serialized or exposed; the registry holds a
    # strong ref, so the key cannot be reused while the entry lives, and
    # a miss only re-publishes the same bytes.
    cached = _EXPORTS.get(id(array))
    if cached is not None and cached[0] is array:
        return cached[1]
    if (
        isinstance(array, np.memmap)
        and getattr(array, "filename", None) is not None
        and array.flags["C_CONTIGUOUS"]
    ):
        ref = SharedArrayRef(
            "mmap",
            str(array.filename),
            array.dtype.str,
            tuple(array.shape),
            int(array.offset),
        )
    elif array.nbytes <= MAX_INLINE_BYTES:
        ref = SharedArrayRef(
            "inline",
            _as_contiguous(array).tobytes(),
            array.dtype.str,
            tuple(array.shape),
        )
    else:
        seg = _new_segment(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
        view[...] = array
        ref = SharedArrayRef(
            "shm", seg.name, array.dtype.str, tuple(array.shape)
        )
    # repro: allow(det-id) — same identity-keyed cache write as above.
    _EXPORTS[id(array)] = (array, ref)
    return ref


def shared_state(array: np.ndarray) -> np.ndarray:
    """Move mutable per-run state into a segment; returns the
    segment-backed replacement (same contents).

    The master keeps writing the returned view in its reconcile phase;
    worker processes attach the same physical pages read-only, so every
    wave's kernels see exactly the pre-wave state the thread backend's
    kernels would — the single-writer contract is unchanged.  The
    replacement registers in :func:`share_array`'s cache, so kernels
    reference it like any published array.
    """
    seg = _new_segment(array.nbytes)
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
    view[...] = array
    ref = SharedArrayRef(
        "shm", seg.name, array.dtype.str, tuple(array.shape)
    )
    # repro: allow(det-id) — identity-keyed cache registration (see
    # share_array); the id never influences results or ordering.
    _EXPORTS[id(view)] = (view, ref)
    return view


def owned_segments() -> List[str]:
    """Names of the live segments this process owns (tests assert this
    drains to [] after ``engine.shutdown()``)."""
    return sorted(_OWNED)


def release_shared() -> None:
    """Close and unlink every owned segment and drop the publication
    cache.  Idempotent; reached from ``engine.shutdown()``, atexit, and
    the serve daemon's signal path.  Shut the process pools down first
    so no worker is mid-wave on a segment being unlinked."""
    _EXPORTS.clear()
    segments = list(_OWNED.values())
    _OWNED.clear()
    for seg in segments:
        try:
            seg.close()
            # unlink() withdraws the segment from the resource tracker;
            # restore the registration _untrack() removed first so the
            # tracker process never logs a KeyError for the mismatch.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(f"/{seg.name}", "shared_memory")
            except Exception:  # pragma: no cover
                pass
            seg.unlink()
        except (FileNotFoundError, OSError):  # already gone: fine
            pass


# ----------------------------------------------------------------------
# Worker-side attachment
# ----------------------------------------------------------------------

#: per-worker attachment cache: ref -> (keepalive handle, array view)
_ATTACHED: Dict[SharedArrayRef, Tuple[object, np.ndarray]] = {}


def _attach(ref: SharedArrayRef) -> np.ndarray:
    cached = _ATTACHED.get(ref)
    if cached is not None:
        return cached[1]
    if ref.kind == "shm":
        # The tracker registers *attached* segments too, and a worker
        # exiting would then unlink segments the master still uses
        # (python/cpython#82300).  Suppress the registration up front
        # rather than register-then-withdraw: with several workers
        # attaching the same segment, interleaved REGISTER/UNREGISTER
        # pairs collapse in the tracker's name set and the surplus
        # unregister logs a KeyError at tracker shutdown.  Workers run
        # tasks serially, so the swap cannot race in-process.
        try:
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
        except Exception:  # pragma: no cover - tracker API is private-ish
            original = None
        try:
            seg = shared_memory.SharedMemory(name=ref.where)
        finally:
            if original is not None:
                resource_tracker.register = original
        array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
        keepalive: object = seg
    elif ref.kind == "mmap":
        array = np.memmap(
            ref.where,
            mode="r",
            dtype=np.dtype(ref.dtype),
            shape=ref.shape,
            offset=ref.offset,
        )
        keepalive = array
    elif ref.kind == "inline":
        array = np.frombuffer(
            ref.where, dtype=np.dtype(ref.dtype)
        ).reshape(ref.shape)
        keepalive = array
    else:
        raise GraphError(f"unknown shared array kind {ref.kind!r}")
    # Kernels only read shared state; make a worker-side write a hard
    # error instead of a silent determinism bug.
    array.flags.writeable = False
    _ATTACHED[ref] = (keepalive, array)
    return array


def _run_shared_task(task):
    """Worker entry point: resolve the kernel function, attach its
    arrays, run one shard slice, return the compact result buffer."""
    module, qualname, ref_items, args, part = task
    fn = getattr(importlib.import_module(module), qualname)
    arrays = {name: _attach(ref) for name, ref in ref_items}
    return fn(arrays, part, *args)


# ----------------------------------------------------------------------
# Shared kernels
# ----------------------------------------------------------------------


class SharedKernel:
    """A picklable wave kernel: module-level function + shared arrays.

    Inline (and on the thread pool) it behaves exactly like the closure
    it replaces: ``kernel(part)`` for gathers, ``kernel(lo, hi)`` for
    shard scans and range maps — so every engine fallback path keeps
    byte-identical results.  Dispatched to a worker process it ships as
    ``(function path, array descriptors, args, part)`` and the worker
    runs the same function against its attached arrays.
    """

    __slots__ = ("fn", "refs", "local", "args")

    def __init__(self, fn, arrays: Dict[str, np.ndarray], args: Tuple = ()):
        if fn.__qualname__ != fn.__name__ or fn.__module__ == "__main__":
            raise GraphError(
                "shared kernel functions must be module-level importables "
                f"(got {fn.__module__}.{fn.__qualname__})"
            )
        self.fn = fn
        self.refs = {name: share_array(arr) for name, arr in arrays.items()}
        self.local = dict(arrays)
        self.args = tuple(args)

    def with_args(self, *args) -> "SharedKernel":
        """A cheap clone carrying per-wave scalar arguments (the arrays
        and their publications are reused)."""
        clone = SharedKernel.__new__(SharedKernel)
        clone.fn = self.fn
        clone.refs = self.refs
        clone.local = self.local
        clone.args = tuple(args)
        return clone

    def task(self, part) -> Tuple:
        """The pickled payload for one shard slice."""
        return (
            self.fn.__module__,
            self.fn.__qualname__,
            tuple(self.refs.items()),
            self.args,
            part,
        )

    def __call__(self, a, b=None):
        part = a if b is None else (int(a), int(b))
        return self.fn(self.local, part, *self.args)

    def __repr__(self) -> str:
        return (
            f"SharedKernel({self.fn.__module__}.{self.fn.__qualname__}, "
            f"arrays={sorted(self.refs)})"
        )


def shared_kernel(fn, arrays: Dict[str, np.ndarray], args: Tuple = ()) -> SharedKernel:
    """Convenience constructor (publication cache makes this cheap to
    call per wave)."""
    return SharedKernel(fn, arrays, args)


# ----------------------------------------------------------------------
# Process pools (spawn context, engine-style lifecycle)
# ----------------------------------------------------------------------

_MP_POOLS: Dict[int, ProcessPoolExecutor] = {}
_MP_DISPATCHES = 0


def _mp_pool_for(workers: int) -> ProcessPoolExecutor:
    pool = _MP_POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        )
        _MP_POOLS[workers] = pool
    return pool


def mp_shutdown(wait: bool = True) -> None:
    """Shut down every process pool (idempotent; pools recreate lazily).
    Called by ``engine.shutdown()`` before segments unlink."""
    pools = list(_MP_POOLS.values())
    _MP_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def mp_pool_stats() -> Dict[str, int]:
    """Process-pool and segment statistics, merged into
    :func:`repro.parallel.engine.pool_stats`."""
    return {
        "mp_pools": len(_MP_POOLS),
        "mp_workers": sum(_MP_POOLS.keys()),
        "mp_dispatches": _MP_DISPATCHES,
        "shm_segments": len(_OWNED),
    }


def _note_mp_dispatch() -> None:
    global _MP_DISPATCHES
    _MP_DISPATCHES += 1


def map_on_mp_pool(
    workers: int, kernel: SharedKernel, parts
) -> Optional[list]:
    """Run one wave's shard slices on the process pool; ``None`` when
    the pool rejected the work (shutdown race, broken pool) — callers
    fall back to the thread/inline path, same results by construction.
    Kernel exceptions propagate: only infrastructure failures trigger
    the fallback."""
    pool = _mp_pool_for(workers)
    tasks = [kernel.task(part) for part in parts]
    try:
        results = list(pool.map(_run_shared_task, tasks))
    except RuntimeError:  # includes BrokenProcessPool / after-shutdown
        if _MP_POOLS.get(workers) is pool:
            del _MP_POOLS[workers]
        return None
    _note_mp_dispatch()
    return results


atexit.register(release_shared)
atexit.register(mp_shutdown)
