"""Engine-backed BFS primitives (the second wave family).

:func:`repro.graph.csr.bfs_distance_array` is the serial reference
sweep: per wave it gathers the frontier's half-edges and dedups the
candidate targets with ``np.unique`` (a sort).  This module runs the
same sweep through the :class:`~repro.parallel.engine.WaveEngine`:

* the **shard phase** gathers each frontier group's raw neighbor
  candidates (pure reads of frozen CSR arrays, GIL-releasing slices,
  fanned out along shard boundaries when the wave is big enough);
* the **reconcile** dedups the concatenated candidates and writes the
  distance array once per wave — and on dense waves it dedups with a
  scatter mask in O(n + |half|) instead of the sort's
  O(|half| log |half|), which is where the single-core speedup of the
  ``parallel`` traversal backend comes from (mirroring the sharded
  peel's frontier-proportional reconcile; see ``bench_parallel_bfs``).

Outputs are **bit-identical** to the serial sweep for every worker
count and shard plan: candidate sets are dedup-order-free, scatter and
sort both produce the ascending unique array, and the distance write
is one batched assignment either way.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from ..graph.csr import _concat_ranges
from .engine import WaveEngine
from .shm import SharedKernel

__all__ = [
    "parallel_bfs_distance_array",
    "frontier_candidates",
    "induced_eccentricity_sweep",
    "resolve_claims",
    "segment_kth_largest",
    "DENSE_WAVE_DIVISOR",
]

#: a wave whose candidate gather is at least ``n / DENSE_WAVE_DIVISOR``
#: half-edges dedups via scatter mask instead of sort — O(n + h) vs
#: O(h log h), identical ascending-unique output.
DENSE_WAVE_DIVISOR = 8


def resolve_claims(
    targets: np.ndarray,
    priorities: np.ndarray,
    limit: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministically resolve contested writes of one wave.

    ``targets`` and ``priorities`` are parallel arrays of proposals
    (several shard kernels may propose the same target with different
    priorities); the winner of each target is its **minimum** priority.
    Returns ``(winning targets ascending, their priorities)``.

    The resolution is *order-free*: every permutation or concatenation
    order of the proposal arrays produces byte-identical output, which
    is what lets a reconcile phase built on it keep the engine's
    "bit-identical for every worker count x shard plan" contract.

    ``limit`` is an exclusive upper bound on the priority values.  When
    ``max(target) * limit`` fits comfortably in int64 the proposals
    pack into single keys (one flat sort); otherwise a lexsort runs the
    same resolution without packing.
    """
    if targets.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    targets = targets.astype(np.int64, copy=False)
    priorities = priorities.astype(np.int64, copy=False)
    span = int(limit)
    if span > 0 and (int(targets.max()) + 1) * span < (1 << 62):
        keys = targets * span + priorities
        keys.sort()
        owners = keys // span
        first = np.ones(owners.size, dtype=bool)
        np.not_equal(owners[1:], owners[:-1], out=first[1:])
        winners = keys[first]
        return winners // span, winners % span
    order = np.lexsort((priorities, targets))
    targets = targets[order]
    priorities = priorities[order]
    first = np.ones(targets.size, dtype=bool)
    np.not_equal(targets[1:], targets[:-1], out=first[1:])
    return targets[first], priorities[first]


def segment_kth_largest(
    values: np.ndarray,
    lengths: np.ndarray,
    k: int,
    fill: int = 0,
) -> np.ndarray:
    """Per-segment ``k``-th largest (0-based) of a concatenated array.

    ``values`` is the concatenation of ``len(lengths)`` variable-length
    segments; segment ``i`` holds ``lengths[i]`` entries.  Returns one
    value per segment: its ``(k+1)``-th largest entry, or ``fill`` for
    segments shorter than ``k + 1``.  One lexsort over the whole batch —
    this is the order-statistic kernel of the delta engine's dirty-region
    work lists (the H-partition fixed point reads "one plus the
    ``(t+1)``-th largest neighbor wave"), shaped like the other reconcile
    primitives here: pure function of its inputs, no per-segment Python.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    num_segments = int(lengths.shape[0])
    out = np.full(num_segments, fill, dtype=np.int64)
    big = lengths > k
    if not np.any(big):
        return out
    seg_idx = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
    order = np.lexsort((-np.asarray(values, dtype=np.int64), seg_idx))
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out[big] = np.asarray(values, dtype=np.int64)[order[starts[big] + k]]
    return out


def _mp_frontier_kernel(arrays, part):
    """Shared-kernel twin of the frontier gather closure: candidates
    (with duplicates) of one work-group, read from shared CSR arrays."""
    offsets = arrays["offsets"]
    half = _concat_ranges(offsets[part], offsets[part + 1])
    return arrays["neighbors"][half]


def frontier_candidates(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    frontier: np.ndarray,
    engine: Optional[WaveEngine] = None,
) -> np.ndarray:
    """Raw neighbor candidates (with duplicates) of an ascending
    frontier — ``neighbors[half]`` of the serial sweep, shard-fanned
    through the engine when the wave passes the gate.  On an mp engine
    the kernel ships as a shared-memory descriptor, so worker processes
    read the same frozen CSR arrays zero-copy."""

    if engine is None:
        half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
        return neighbors[half]
    cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
    if engine.mp:
        kernel = SharedKernel(
            _mp_frontier_kernel,
            {"offsets": offsets, "neighbors": neighbors},
        )
        return engine.gather(kernel, frontier, cost)

    def kernel(part: np.ndarray) -> np.ndarray:
        half = _concat_ranges(offsets[part], offsets[part + 1])
        return neighbors[half]

    return engine.gather(kernel, frontier, cost)


def parallel_bfs_distance_array(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    n: int,
    seeds: Sequence[int],
    radius: Optional[int] = None,
    engine: Optional[WaveEngine] = None,
) -> np.ndarray:
    """Multi-source BFS distances, bit-identical to
    :func:`repro.graph.csr.bfs_distance_array` (-1 unreached, stop at
    ``radius``), with each wave's gather run through the engine and a
    scatter-dedup reconcile on dense waves."""
    dist = np.full(n, -1, dtype=np.int64)
    if len(seeds) == 0:
        return dist
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    # Same seed validation as the serial sweep: negative seeds would
    # silently wrap under fancy indexing, out-of-range ones would raise
    # a bare IndexError mid-sweep.
    if frontier[0] < 0 or frontier[-1] >= n:
        bad = frontier[0] if frontier[0] < 0 else frontier[-1]
        raise GraphError(
            f"BFS seed index {int(bad)} out of range for {n} vertices"
        )
    dist[frontier] = 0
    depth = 0
    while frontier.size and (radius is None or depth < radius):
        candidates = frontier_candidates(offsets, neighbors, frontier, engine)
        depth += 1
        if candidates.size * DENSE_WAVE_DIVISOR >= n:
            mask = np.zeros(n, dtype=bool)
            mask[candidates] = True
            mask &= dist < 0
            targets = np.flatnonzero(mask)
        else:
            targets = np.unique(candidates)
            targets = targets[dist[targets] < 0]
        dist[targets] = depth
        frontier = targets
    return dist


def induced_eccentricity_sweep(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    k: int,
    engine: Optional[WaveEngine] = None,
) -> Tuple[int, bool]:
    """``(max eccentricity, connected)`` of a compacted sub-CSR on
    ``k`` local indices: one BFS per source, sources chunked across
    the engine's workers (each chunk's sweeps run serially inside a
    worker — nesting pool dispatch inside pool workers would deadlock
    small pools).  The max is order-free, and connectivity is uniform
    across sources (any BFS reaches exactly its component), so chunked
    results reconcile to exactly the serial answer.

    This per-source loop is Python-overhead-bound (the GIL caps the
    thread engine at one core on it), which makes it the showcase
    workload of the mp backend: each worker process runs its source
    block against the shared CSR arrays at full speed."""

    if engine is None:
        return _ecc_block_impl(offsets, neighbors, k, 0, k)
    if engine.mp:
        fn = SharedKernel(
            _mp_ecc_block,
            {"offsets": offsets, "neighbors": neighbors},
            args=(int(k),),
        )
        results = engine.map_ranges(fn, k, cost=k * k)
    else:

        def block(lo: int, hi: int) -> Tuple[int, bool]:
            return _ecc_block_impl(offsets, neighbors, k, lo, hi)

        # Each source's sweep touches >= k vertices, so k*k lower-bounds
        # the scan's work — the gate that keeps tiny clusters inline.
        results = engine.map_ranges(block, k, cost=k * k)
    best = max((ecc for ecc, _ok in results), default=0)
    connected = all(ok for _ecc, ok in results)
    return best, connected


def _ecc_block_impl(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    k: int,
    lo: int,
    hi: int,
) -> Tuple[int, bool]:
    """One source block of the eccentricity sweep: serial per-source
    BFS, early exit on the first disconnected source."""
    best = 0
    for start in range(lo, hi):
        dist = parallel_bfs_distance_array(offsets, neighbors, k, [start])
        if int((dist >= 0).sum()) != k:
            return best, False
        best = max(best, int(dist.max()))
    return best, True


def _mp_ecc_block(arrays, part, k):
    """Shared-kernel twin of the eccentricity source block."""
    lo, hi = part
    return _ecc_block_impl(arrays["offsets"], arrays["neighbors"], k, lo, hi)
