"""repro.parallel — the shared parallel wave engine.

One runtime for every frontier-synchronous hot path: sharded degree
peeling (:mod:`repro.graph.shard` is a thin client), multi-seed BFS,
ball carving, per-color-class scans.  See :mod:`repro.parallel.engine`
for the wave/reconcile contract and the determinism story, and
``docs/api.md`` ("The parallel wave engine") for the user-facing tour.
"""

from .engine import (
    FAN_OUT_MIN_HALF_EDGES,
    FAN_OUT_MIN_SCAN_VERTICES,
    MAX_AUTO_WORKERS,
    MPWaveEngine,
    WaveEngine,
    engine_for,
    engine_for_offsets,
    pool_stats,
    resolve_workers,
    shutdown,
)
from .shm import (
    MAX_INLINE_BYTES,
    MP_FAN_OUT_MIN_HALF_EDGES,
    MP_FAN_OUT_MIN_SCAN_VERTICES,
    SharedKernel,
    mp_pool_stats,
    mp_shutdown,
    owned_segments,
    release_shared,
    resolve_mp_workers,
    share_array,
    shared_kernel,
    shared_state,
)
from .plan import (
    MAX_SHARDS,
    SHARD_TARGET_HALF_EDGES,
    SHARD_TARGET_VERTICES,
    ShardPlan,
    default_num_shards,
    plan_of,
)
from .bfs import (
    DENSE_WAVE_DIVISOR,
    frontier_candidates,
    induced_eccentricity_sweep,
    parallel_bfs_distance_array,
    resolve_claims,
    segment_kth_largest,
)

__all__ = [
    "WaveEngine",
    "MPWaveEngine",
    "SharedKernel",
    "shared_kernel",
    "share_array",
    "shared_state",
    "release_shared",
    "owned_segments",
    "resolve_mp_workers",
    "mp_shutdown",
    "mp_pool_stats",
    "MAX_INLINE_BYTES",
    "MP_FAN_OUT_MIN_HALF_EDGES",
    "MP_FAN_OUT_MIN_SCAN_VERTICES",
    "ShardPlan",
    "engine_for",
    "engine_for_offsets",
    "plan_of",
    "default_num_shards",
    "resolve_workers",
    "shutdown",
    "pool_stats",
    "parallel_bfs_distance_array",
    "frontier_candidates",
    "induced_eccentricity_sweep",
    "resolve_claims",
    "segment_kth_largest",
    "DENSE_WAVE_DIVISOR",
    "FAN_OUT_MIN_HALF_EDGES",
    "FAN_OUT_MIN_SCAN_VERTICES",
    "MAX_AUTO_WORKERS",
    "MAX_SHARDS",
    "SHARD_TARGET_HALF_EDGES",
    "SHARD_TARGET_VERTICES",
]
