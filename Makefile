# Developer entry points.  PYTHONPATH=src is the only wiring the
# offline environment needs (no editable install available).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)
export PYTHONPATH

.PHONY: test test-fast lint check bench-kernel bench-json golden-regen

# Tier-1 verify: the full suite, fail-fast.
test:
	python -m pytest -x -q

# Quick loop: skips the slow example sweeps (~seconds instead of ~a minute).
test-fast:
	python -m pytest -x -q -m "not slow"

# Compile check everywhere + pyflakes when available + API-surface
# freeze + the determinism/concurrency checks (tools/lint.py).
lint:
	python tools/lint.py

# Determinism & concurrency static analysis (tools/checks/): kernel
# determinism lint, fan-out closure-race detection, pass-DAG
# reads/writes effect checking.  Zero unbaselined findings required;
# writes CHECK_findings.json (archived by CI).  Rule catalog:
# `python -m tools.checks --list-rules`; docs/determinism.md explains
# the contract and the pragma/baseline workflow.
check:
	python -m tools.checks --json CHECK_findings.json

# Dict vs flat-array kernel on the peeling + traversal hot paths
# (asserts >= 2x at n >= 2000), session reuse (>= 1.5x warm prep),
# sharded vs serial peeling (>= 1.5x at n >= 50k), and the
# engine-backed parallel BFS paths (>= 1.5x on dense-frontier
# workloads at n >= 50k, outputs bit-identical per worker count), and
# the simultaneous carve rule vs the doubling csr carve (>= 1.5x
# best-over-workers at n >= 50k, classes bit-identical everywhere),
# and the concurrent pass schedule vs the serial depth_cut sweep
# (>= 1.3x best-over-workers at n >= 50k, cuts bit-identical);
# writes benchmarks/results/BENCH_*.json (incl. BENCH_passes).
bench-kernel:
	python benchmarks/bench_kernel.py

# Timing-snapshot mode: same benches and JSON artifacts, no hard
# speedup asserts — what the CI perf-smoke job runs on shared runners.
bench-json:
	BENCH_SNAPSHOT=1 python benchmarks/bench_kernel.py

# Re-freeze tests/golden/*.json after an intentional output change.
golden-regen:
	python -m pytest tests/test_golden_regression.py --regen -q
